package detect

import (
	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// This file is the streaming half of the package: the same analyses as
// TakeCensus and ScheduleSensitivePairs, restated as accumulators that
// consume one (event, epoch, stamp) record at a time straight off the
// MVCLOG02 delta stream — no materialized []Stamped, no oracle. They are
// what track.Monitor and `mvc detect -live` evaluate per sealed segment.

// CensusAccumulator is the incremental form of TakeCensus. Each Add
// compares the new stamp against every stamp retained in the window, so
// with an unbounded window (size 0) the final Census equals TakeCensus on
// the materialized stamp slice exactly. With a bounded window, pairs whose
// earlier endpoint has been evicted are not compared; Skipped counts them
// so the totals still account for every pair.
//
// Unlike the offline TakeCensus, the accumulator is epoch-aware: events in
// different epochs are separated by a Compact barrier and counted as
// ordered, even though their raw clock values (which restart each epoch)
// are incomparable.
type CensusAccumulator struct {
	window  int
	census  Census
	skipped int
	epochs  []int
	ring    []vclock.Vector
}

// NewCensusAccumulator returns an accumulator retaining the last window
// stamps; window <= 0 retains everything.
func NewCensusAccumulator(window int) *CensusAccumulator {
	return &CensusAccumulator{window: window}
}

// Add folds the next event's stamp into the census. The vector is borrowed
// (StampSink convention) and cloned before retention.
func (a *CensusAccumulator) Add(epoch int, v vclock.Vector) {
	a.skipped += a.census.Events - len(a.ring)
	for i, r := range a.ring {
		a.census.Total++
		if a.epochs[i] != epoch {
			a.census.Ordered++
		} else if r.Concurrent(v) {
			a.census.Concurrent++
		} else {
			a.census.Ordered++
		}
	}
	a.census.Events++
	a.epochs = append(a.epochs, epoch)
	a.ring = append(a.ring, v.Clone())
	if a.window > 0 && len(a.ring) > a.window {
		drop := len(a.ring) - a.window
		a.epochs = a.epochs[drop:]
		a.ring = append(a.ring[:0:0], a.ring[drop:]...)
	}
}

// Census returns the counts so far. Total covers only compared pairs; add
// Skipped to recover the full pair count.
func (a *CensusAccumulator) Census() Census { return a.census }

// Skipped returns the number of event pairs that were not compared because
// the earlier event had slid out of the window.
func (a *CensusAccumulator) Skipped() int { return a.skipped }

// PairScanner is the streaming form of ScheduleSensitivePairs, and unlike
// the census it needs no window to be exact: O(objects + threads) state
// suffices. For the object-adjacent pair (e, f) the offline rule flags f
// iff e's thread successor ts is absent or does not happen before f.
// Because the trace order linearizes happened-before, at the moment f is
// committed either ts has already appeared — and ts → f reduces to a stamp
// comparison (Theorem 2) — or ts has not, in which case ts's trace index
// exceeds f's and ts → f is impossible, so "no successor yet" and "no
// successor at all" flag identically. The scanner therefore keeps, per
// object, the last event and — filled in lazily when that event's thread
// next commits anywhere — its thread successor's stamp.
//
// A Compact barrier orders everything across epochs, so an epoch change
// resets the per-object records: cross-epoch adjacent pairs are never
// lock-only.
type PairScanner struct {
	epoch int
	objs  map[event.ObjectID]*objRecord
	last  map[event.ThreadID]lastOfThread
	count int
}

type objRecord struct {
	e    event.Event
	succ vclock.Vector // clone of e's thread successor's stamp, nil until seen
}

type lastOfThread struct {
	obj   event.ObjectID
	index int
}

// NewPairScanner returns an empty scanner.
func NewPairScanner() *PairScanner {
	return &PairScanner{
		objs: make(map[event.ObjectID]*objRecord),
		last: make(map[event.ThreadID]lastOfThread),
	}
}

// Add consumes the next event and reports the schedule-sensitive pair it
// completes, if any. The vector is borrowed and cloned as needed. Over a
// full single-epoch run the flagged pairs equal ScheduleSensitivePairs on
// the materialized trace as a set; the scanner emits each pair when its
// second event commits, the offline pass in order of first events.
func (s *PairScanner) Add(e event.Event, epoch int, v vclock.Vector) (Pair, bool) {
	if epoch != s.epoch {
		s.epoch = epoch
		clear(s.objs)
		clear(s.last)
	}

	// e is the thread successor of this thread's previous event; if that
	// previous event is still some object's last event, its record has
	// been waiting for exactly this stamp.
	if p, ok := s.last[e.Thread]; ok {
		if r := s.objs[p.obj]; r != nil && r.e.Index == p.index && r.succ == nil {
			r.succ = v.Clone()
		}
	}

	var out Pair
	flagged := false
	if r := s.objs[e.Object]; r != nil && r.e.Thread != e.Thread &&
		!(r.e.Op == event.OpRead && e.Op == event.OpRead) {
		// Lock-only iff the predecessor's thread successor is absent
		// (so far — arriving later puts it causally after e) or its
		// stamp does not precede e's.
		if r.succ == nil || !r.succ.Less(v) {
			out = Pair{First: r.e, Second: e}
			flagged = true
			s.count++
		}
	}

	s.objs[e.Object] = &objRecord{e: e}
	s.last[e.Thread] = lastOfThread{obj: e.Object, index: e.Index}
	return out, flagged
}

// Count returns how many pairs have been flagged so far.
func (s *PairScanner) Count() int { return s.count }
