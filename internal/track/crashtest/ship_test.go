package crashtest

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mixedclock/internal/tlog"
	"mixedclock/internal/track"
	"mixedclock/internal/vfs"
)

// checkMirror verifies a shipped mirror's self-consistency: its catalog (if
// any) lists only segment files the mirror actually holds, each with the
// promised size and content hash. When full is true the mirror must also
// cover the whole source extent — the post-re-ship state.
func checkMirror(t *testing.T, dst string, wantSealed int, full bool) {
	t.Helper()
	f, err := os.Open(filepath.Join(dst, tlog.CatalogFileName))
	if err != nil {
		if full {
			t.Fatalf("complete mirror has no catalog: %v", err)
		}
		// The crash froze shipping before the catalog was mirrored; the
		// mirror is a plain pile of verified segment copies — fine.
		return
	}
	cat, err := tlog.DecodeCatalog(f)
	f.Close()
	if err != nil {
		t.Fatalf("mirror catalog unreadable: %v", err)
	}
	if full && cat.SealedEvents != wantSealed {
		t.Fatalf("complete mirror covers %d events, want %d", cat.SealedEvents, wantSealed)
	}
	for _, sg := range cat.Segments {
		data, err := os.ReadFile(filepath.Join(dst, sg.Path))
		if err != nil {
			t.Fatalf("mirror catalog lists %s but: %v", sg.Path, err)
		}
		if int64(len(data)) != sg.Bytes {
			t.Fatalf("mirror %s holds %d bytes, catalog says %d", sg.Path, len(data), sg.Bytes)
		}
		if sg.SHA256 != "" {
			sum := sha256.Sum256(data)
			if hex.EncodeToString(sum[:]) != sg.SHA256 {
				t.Fatalf("mirror %s content hash mismatch", sg.Path)
			}
		}
	}
}

// TestShipperCrashSweep crashes a shipping pass at every durable-op index:
// the half-shipped mirror must stay self-consistent (its catalog — mirrored
// last — never lists a file it does not fully hold), and a re-ship on the
// recovered filesystem must complete the mirror.
func TestShipperCrashSweep(t *testing.T) {
	// A sealed, compacted, cleanly closed source run to ship from.
	src := t.TempDir()
	cfg := sweepConfig{
		name:      "ship-src",
		spill:     track.SpillPolicy{SealEvents: 4},
		rounds:    6,
		compactAt: map[int]int{2: 1},
	}
	tr, err := openAndRun(src, cfg.store(nil), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	srcSealed := tr.Events()
	cursor := filepath.Join(src, tlog.ShipCursorFileName)

	// Count a fault-free ship's durable ops — the sweep's index space.
	fi := vfs.NewFaulty(vfs.OS)
	if _, err := (&track.Shipper{Src: src, Dst: t.TempDir(), FS: fi}).ConsumeUpTo(0); err != nil {
		t.Fatal(err)
	}
	n := fi.Ops()
	if n == 0 {
		t.Fatal("shipping performs no durable operations; nothing to sweep")
	}
	if err := os.Remove(cursor); err != nil {
		t.Fatal(err)
	}

	base := t.TempDir()
	for k := int64(0); k < n; k++ {
		dst := filepath.Join(base, fmt.Sprintf("k%d", k))
		fi := vfs.NewFaulty(vfs.OS)
		fi.CrashAt(k)
		if _, err := (&track.Shipper{Src: src, Dst: dst, FS: fi}).ConsumeUpTo(0); err == nil {
			t.Fatalf("k=%d: shipping succeeded through a crash", k)
		}
		checkMirror(t, dst, srcSealed, false)

		// The machine comes back; the same mirror must complete.
		rep, err := (&track.Shipper{Src: src, Dst: dst}).ConsumeUpTo(0)
		if err != nil {
			t.Fatalf("k=%d: re-ship after crash: %v", k, err)
		}
		if rep.SealedEvents != srcSealed {
			t.Fatalf("k=%d: re-ship covered %d events, want %d", k, rep.SealedEvents, srcSealed)
		}
		checkMirror(t, dst, srcSealed, true)
		// The cursor the re-ship persisted in Src would make the next
		// iteration skip work; the sweep wants identical op sequences.
		if err := os.Remove(cursor); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

// TestShipperCrashLeavesSourceIntact is the other half of the shipping
// contract: a crashed shipper must not have damaged the source run — it is
// read-only on Src except for the cursor file, and the frozen filesystem
// means even that never landed.
func TestShipperCrashLeavesSourceIntact(t *testing.T) {
	src := t.TempDir()
	cfg := sweepConfig{
		name:   "ship-src",
		spill:  track.SpillPolicy{SealEvents: 4},
		rounds: 4,
	}
	tr, err := openAndRun(src, cfg.store(nil), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	fi := vfs.NewFaulty(vfs.OS)
	fi.CrashAt(2)
	if _, err := (&track.Shipper{Src: src, Dst: t.TempDir(), FS: fi}).ConsumeUpTo(0); err == nil {
		t.Fatal("shipping succeeded through a crash")
	}
	re, err := track.Open(src)
	if err != nil {
		t.Fatalf("source run damaged by a crashed shipper: %v", err)
	}
	defer re.Close()
	if got, want := re.Events(), tr.Events(); got != want {
		t.Fatalf("source run has %d events after a crashed ship, want %d", got, want)
	}
	if q := re.Recovery().Quarantined; len(q) != 0 {
		t.Fatalf("crashed shipper caused quarantines in the source: %v", q)
	}
}
