package vclock

import "fmt"

// Clock is the representation-independent interface over a growable vector
// timestamp. The flat Vector (wrapped by Flat) is the reference
// implementation; internal/treeclock provides a tree-structured one whose
// joins skip already-dominated subtrees. Whatever the representation, a Clock
// denotes the same mathematical object — a map from component index to
// logical time, zero where absent — and two backends fed the same operation
// sequence must flatten to equal Vectors.
//
// Clocks are mutable and not safe for concurrent use. Mutating methods
// (Tick, Join, Grow) update the receiver in place, unlike Vector's
// append-idiom methods.
type Clock interface {
	// Tick increments component i in place, growing the clock as needed.
	Tick(i int)
	// Join folds other into the receiver: the receiver becomes the
	// componentwise maximum of the two. The argument is not modified.
	Join(other Clock)
	// TickDelta is Tick that also appends the change it made — one
	// (index, value) pair — to dst, returning the extended slice. The
	// buffer is caller-owned scratch: implementations only append.
	TickDelta(i int, dst []Delta) []Delta
	// JoinDelta is Join that also appends one (index, value) pair per
	// component whose value actually increased, in some implementation
	// order, to dst. Components the join left unchanged are never
	// reported, so on causally local workloads the capture is much
	// smaller than the clock width.
	JoinDelta(other Clock, dst []Delta) []Delta
	// Apply replays a captured change sequence: each (index, value) pair
	// assigns the component, growing the clock as needed. Values must be
	// monotone (each at least the component's current value) — the only
	// sequences the capture methods produce — or the clock's internal
	// invariants may not survive.
	Apply(ds []Delta)
	// Compare orders the receiver against other, missing components
	// comparing as zero.
	Compare(other Clock) Ordering
	// Less reports whether the receiver happened strictly before other.
	Less(other Clock) bool
	// Concurrent reports whether the two clocks are incomparable.
	Concurrent(other Clock) bool
	// At returns component i, zero when out of range.
	At(i int) uint64
	// Width returns the number of components the clock currently stores
	// (trailing zeros included).
	Width() int
	// Grow extends the clock with zero components to at least n.
	Grow(n int)
	// Clone returns an independent deep copy.
	Clone() Clock
	// Flatten returns the clock as a flat Vector sharing no storage with
	// the receiver — the codec hook: flat vectors are the wire form for
	// every backend, so logs stay backend-agnostic.
	Flatten() Vector
	// AppendBinary appends the canonical wire encoding (identical across
	// backends) to dst and returns the extended slice.
	AppendBinary(dst []byte) []byte
}

// Backend names a clock representation. The flat vector is the zero value,
// so existing call sites keep their behavior.
type Backend int

const (
	// BackendFlat is the reference []uint64 representation: O(k) joins and
	// comparisons, minimal constants.
	BackendFlat Backend = iota
	// BackendTree is the tree clock of Mathur, Tunç, Pavlogiannis &
	// Viswanathan (PLDI 2022): joins skip already-dominated subtrees, so
	// hot paths with causal locality pay far less than O(k).
	BackendTree
	// BackendAuto defers the choice to the runtime: flat while the
	// component set is narrow, tree once it is wide enough (and the join
	// shape local enough) for subtree pruning to pay — the thresholds
	// core.ChooseBackend derives from BenchmarkBackends. Auto is a policy,
	// not a representation: constructors resolve it to Flat or Tree before
	// building a clock.
	BackendAuto
)

// String returns "flat", "tree" or "auto".
func (b Backend) String() string {
	switch b {
	case BackendFlat:
		return "flat"
	case BackendTree:
		return "tree"
	case BackendAuto:
		return "auto"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend maps "flat", "tree" and "auto" to their Backend, for flag
// parsing.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "flat":
		return BackendFlat, nil
	case "tree":
		return BackendTree, nil
	case "auto":
		return BackendAuto, nil
	default:
		return 0, fmt.Errorf("vclock: unknown backend %q (want flat, tree or auto)", s)
	}
}

// Flat adapts the flat Vector to the Clock interface. It is the reference
// backend: every other representation must agree with it operation for
// operation.
type Flat struct {
	v Vector
}

var _ Clock = (*Flat)(nil)

// NewFlat returns a zeroed flat clock with n components.
func NewFlat(n int) *Flat { return &Flat{v: New(n)} }

// FlatOf wraps an existing Vector without copying; the clock owns v
// afterwards.
func FlatOf(v Vector) *Flat { return &Flat{v: v} }

// Vector returns the underlying vector (shared storage; use Flatten for an
// independent copy).
func (f *Flat) Vector() Vector { return f.v }

// Tick implements Clock.
func (f *Flat) Tick(i int) { f.v = f.v.Tick(i) }

// Join implements Clock.
func (f *Flat) Join(other Clock) {
	if o, ok := other.(*Flat); ok {
		f.v = f.v.MergeInPlace(o.v)
		return
	}
	n := other.Width()
	f.v = f.v.Grow(n)
	for i := 0; i < n; i++ {
		if x := other.At(i); x > f.v[i] {
			f.v[i] = x
		}
	}
}

// TickDelta implements Clock.
func (f *Flat) TickDelta(i int, dst []Delta) []Delta {
	f.v = f.v.Tick(i)
	return append(dst, Delta{Index: int32(i), Value: f.v[i]})
}

// JoinDelta implements Clock. The scan is still O(width) — the flat form has
// no way to know what changed without looking — but the capture itself costs
// only the components that rose, and nothing is allocated beyond dst's own
// growth.
func (f *Flat) JoinDelta(other Clock, dst []Delta) []Delta {
	if o, ok := other.(*Flat); ok {
		f.v = f.v.Grow(len(o.v))
		for i, x := range o.v {
			if x > f.v[i] {
				f.v[i] = x
				dst = append(dst, Delta{Index: int32(i), Value: x})
			}
		}
		return dst
	}
	n := other.Width()
	f.v = f.v.Grow(n)
	for i := 0; i < n; i++ {
		if x := other.At(i); x > f.v[i] {
			f.v[i] = x
			dst = append(dst, Delta{Index: int32(i), Value: x})
		}
	}
	return dst
}

// Apply implements Clock.
func (f *Flat) Apply(ds []Delta) { f.v = f.v.Apply(ds) }

// Compare implements Clock.
func (f *Flat) Compare(other Clock) Ordering {
	if o, ok := other.(*Flat); ok {
		return f.v.Compare(o.v)
	}
	return CompareClocks(f, other)
}

// Less implements Clock.
func (f *Flat) Less(other Clock) bool { return f.Compare(other) == Before }

// Concurrent implements Clock.
func (f *Flat) Concurrent(other Clock) bool { return f.Compare(other) == Concurrent }

// At implements Clock.
func (f *Flat) At(i int) uint64 { return f.v.At(i) }

// Width implements Clock.
func (f *Flat) Width() int { return len(f.v) }

// Grow implements Clock.
func (f *Flat) Grow(n int) { f.v = f.v.Grow(n) }

// Clone implements Clock.
func (f *Flat) Clone() Clock { return &Flat{v: f.v.Clone()} }

// Flatten implements Clock.
func (f *Flat) Flatten() Vector { return f.v.Clone() }

// AppendBinary implements Clock.
func (f *Flat) AppendBinary(dst []byte) []byte { return f.v.AppendBinary(dst) }

// String renders the clock like its flat vector.
func (f *Flat) String() string { return f.v.String() }

// CompareClocks orders a against b component by component through the Clock
// interface — the backend-agnostic fallback used when the two sides have
// different representations.
func CompareClocks(a, b Clock) Ordering {
	n := a.Width()
	if w := b.Width(); w > n {
		n = w
	}
	var less, greater bool
	for i := 0; i < n; i++ {
		x, y := a.At(i), b.At(i)
		switch {
		case x < y:
			less = true
		case x > y:
			greater = true
		}
		if less && greater {
			return Concurrent
		}
	}
	switch {
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}
