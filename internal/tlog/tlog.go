// Package tlog implements a compact binary log of timestamped events — the
// persistence format for computations whose timestamps should survive the
// process (post-mortem debugging, recovery lines after a crash).
//
// Format: an 8-byte magic header, then one record per event:
//
//	uvarint thread | uvarint object | uvarint op | canonical vector
//
// where the vector is a uvarint component count followed by uvarint
// components (trailing zeros trimmed, as in vclock's codec). Records are
// self-delimiting, so a log truncated by a crash is readable up to the last
// complete record; ReadAll returns the readable prefix together with
// ErrTruncated, which is exactly what failure recovery wants.
package tlog

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// magic identifies the format and its version.
var magic = [8]byte{'M', 'V', 'C', 'L', 'O', 'G', '0', '1'}

// Errors returned by readers.
var (
	// ErrBadMagic means the input is not a tlog stream.
	ErrBadMagic = errors.New("tlog: bad magic header")
	// ErrTruncated means the stream ended mid-record; data read up to the
	// previous record is valid.
	ErrTruncated = errors.New("tlog: truncated record")
	// ErrCorrupt means a record carries an out-of-bounds field (e.g. an
	// absurd thread ID or component count); data read up to the previous
	// record is valid.
	ErrCorrupt = errors.New("tlog: corrupt record")
)

// Field bounds: IDs and vector widths beyond these indicate corruption, not
// a legitimately huge system, and guard the reader against allocating
// attacker-controlled amounts of memory.
const (
	maxID         = 1<<31 - 1
	maxOp         = 1 << 16
	maxComponents = 1 << 24
)

// Writer appends timestamped events to a stream. Call Flush before closing
// the underlying writer.
type Writer struct {
	w       *bufio.Writer
	started bool
	buf     []byte
}

// NewWriter returns a Writer on w. The magic header is written lazily on
// the first Append, so an abandoned Writer leaves no bytes behind.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Append writes one record.
func (w *Writer) Append(e event.Event, v vclock.Vector) error {
	if e.Thread < 0 || e.Object < 0 || e.Op < 0 {
		return fmt.Errorf("tlog: negative field in event %v", e)
	}
	if !w.started {
		if _, err := w.w.Write(magic[:]); err != nil {
			return fmt.Errorf("tlog: writing header: %w", err)
		}
		w.started = true
	}
	w.buf = w.buf[:0]
	w.buf = binary.AppendUvarint(w.buf, uint64(e.Thread))
	w.buf = binary.AppendUvarint(w.buf, uint64(e.Object))
	w.buf = binary.AppendUvarint(w.buf, uint64(e.Op))
	w.buf = v.AppendBinary(w.buf)
	if _, err := w.w.Write(w.buf); err != nil {
		return fmt.Errorf("tlog: writing record: %w", err)
	}
	return nil
}

// Flush pushes buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("tlog: flushing: %w", err)
	}
	return nil
}

// Reader iterates a tlog stream.
type Reader struct {
	r     *bufio.Reader
	index int
}

// NewReader validates the magic header and returns a Reader. An empty
// stream (no header at all) yields a Reader that immediately reports
// io.EOF, matching the lazy-header Writer.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(magic))
	if err == io.EOF && len(head) == 0 {
		return &Reader{r: br}, nil
	}
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("tlog: reading header: %w", err)
	}
	if !bytes.Equal(head, magic[:]) {
		return nil, ErrBadMagic
	}
	if _, err := br.Discard(len(magic)); err != nil {
		return nil, fmt.Errorf("tlog: discarding header: %w", err)
	}
	return &Reader{r: br}, nil
}

// Next returns the next record. It reports io.EOF at a clean end of stream
// and ErrTruncated when the stream stops mid-record.
func (r *Reader) Next() (event.Event, vclock.Vector, error) {
	t, err := binary.ReadUvarint(r.r)
	if err == io.EOF {
		return event.Event{}, nil, io.EOF // clean boundary
	}
	if err != nil {
		return event.Event{}, nil, fmt.Errorf("%w: thread field: %v", ErrTruncated, err)
	}
	if t > maxID {
		return event.Event{}, nil, fmt.Errorf("%w: thread ID %d", ErrCorrupt, t)
	}
	o, err := r.field("object")
	if err != nil {
		return event.Event{}, nil, err
	}
	if o > maxID {
		return event.Event{}, nil, fmt.Errorf("%w: object ID %d", ErrCorrupt, o)
	}
	op, err := r.field("op")
	if err != nil {
		return event.Event{}, nil, err
	}
	if op > maxOp {
		return event.Event{}, nil, fmt.Errorf("%w: op %d", ErrCorrupt, op)
	}
	n, err := r.field("component count")
	if err != nil {
		return event.Event{}, nil, err
	}
	if n > maxComponents {
		return event.Event{}, nil, fmt.Errorf("%w: component count %d", ErrCorrupt, n)
	}
	// Grow incrementally: each component consumes at least one input byte,
	// so a lying count cannot force a large allocation up front.
	v := make(vclock.Vector, 0, min(n, 64))
	for i := uint64(0); i < n; i++ {
		x, err := r.field("component")
		if err != nil {
			return event.Event{}, nil, err
		}
		v = append(v, x)
	}
	e := event.Event{
		Index:  r.index,
		Thread: event.ThreadID(t),
		Object: event.ObjectID(o),
		Op:     event.Op(op),
	}
	r.index++
	return e, v, nil
}

func (r *Reader) field(name string) (uint64, error) {
	x, err := binary.ReadUvarint(r.r)
	if err != nil {
		return 0, fmt.Errorf("%w: %s field: %v", ErrTruncated, name, err)
	}
	return x, nil
}

// WriteAll writes a whole timestamped computation.
func WriteAll(w io.Writer, tr *event.Trace, stamps []vclock.Vector) error {
	if len(stamps) != tr.Len() {
		return fmt.Errorf("tlog: %d stamps for %d events", len(stamps), tr.Len())
	}
	lw := NewWriter(w)
	for i := 0; i < tr.Len(); i++ {
		if err := lw.Append(tr.At(i), stamps[i]); err != nil {
			return err
		}
	}
	return lw.Flush()
}

// ReadAll reads every complete record. On truncation it returns the
// readable prefix together with an error wrapping ErrTruncated, so crash
// recovery can proceed with what survived.
func ReadAll(r io.Reader) (*event.Trace, []vclock.Vector, error) {
	lr, err := NewReader(r)
	if err != nil {
		return nil, nil, err
	}
	tr := event.NewTrace()
	var stamps []vclock.Vector
	for {
		e, v, err := lr.Next()
		if err == io.EOF {
			return tr, stamps, nil
		}
		if err != nil {
			return tr, stamps, err
		}
		tr.Append(e.Thread, e.Object, e.Op)
		stamps = append(stamps, v)
	}
}
