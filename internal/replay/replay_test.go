package replay

import (
	"math/rand"
	"testing"

	"mixedclock/internal/clock"
	"mixedclock/internal/core"
	"mixedclock/internal/event"
	"mixedclock/internal/hb"
)

// diamond builds: e0=(T1,O1), then e1=(T1,O2) and e2=(T2,O1) concurrent,
// then e3=(T2,O2) after both (via O2's chain e1→e3 and thread chain e2→e3).
func diamond() *event.Trace {
	tr := event.NewTrace()
	tr.Append(0, 0, event.OpWrite) // e0
	tr.Append(0, 1, event.OpWrite) // e1
	tr.Append(1, 0, event.OpWrite) // e2
	tr.Append(1, 1, event.OpWrite) // e3
	return tr
}

func TestIsLinearization(t *testing.T) {
	tr := diamond()
	tests := []struct {
		name string
		perm []int
		want bool
	}{
		{"identity", []int{0, 1, 2, 3}, true},
		{"swap concurrent", []int{0, 2, 1, 3}, true},
		{"violates thread order", []int{1, 0, 2, 3}, false},
		{"violates object order", []int{0, 1, 3, 2}, false},
		{"too short", []int{0, 1, 2}, false},
		{"duplicate", []int{0, 1, 1, 3}, false},
		{"out of range", []int{0, 1, 2, 9}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsLinearization(tr, tt.perm); got != tt.want {
				t.Errorf("IsLinearization(%v) = %v, want %v", tt.perm, got, tt.want)
			}
		})
	}
}

func TestReorderPreservesHappenedBefore(t *testing.T) {
	tr := diamond()
	re, err := Reorder(tr, []int{0, 2, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	// The reordered trace represents the same computation: same per-thread
	// and per-object sequences, hence the same happened-before relation
	// modulo the index relabeling (old index i sits at new position p(i)).
	pos := map[int]int{0: 0, 2: 1, 1: 2, 3: 3}
	a, b := hb.New(tr), hb.New(re)
	for i := 0; i < tr.Len(); i++ {
		for j := 0; j < tr.Len(); j++ {
			if i == j {
				continue
			}
			if a.HappenedBefore(i, j) != b.HappenedBefore(pos[i], pos[j]) {
				t.Fatalf("relation changed for (%d, %d)", i, j)
			}
		}
	}
}

func TestReorderRejectsIllegal(t *testing.T) {
	if _, err := Reorder(diamond(), []int{1, 0, 2, 3}); err == nil {
		t.Fatal("illegal permutation accepted")
	}
}

func TestRandomLinearizationAlwaysLegal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		tr := randomTrace(rng, 4, 4, 25)
		perm := RandomLinearization(tr, rng)
		if !IsLinearization(tr, perm) {
			t.Fatalf("trial %d: illegal linearization %v", trial, perm)
		}
	}
}

func TestRandomLinearizationVaries(t *testing.T) {
	tr := diamond()
	rng := rand.New(rand.NewSource(11))
	seen := map[[4]int]bool{}
	for k := 0; k < 50; k++ {
		p := RandomLinearization(tr, rng)
		seen[[4]int{p[0], p[1], p[2], p[3]}] = true
	}
	// The diamond has exactly two linearizations; sampling should find
	// both.
	if len(seen) != 2 {
		t.Fatalf("found %d distinct linearizations, want 2: %v", len(seen), seen)
	}
}

func TestEnumerateDiamond(t *testing.T) {
	got := CountLinearizations(diamond(), 0)
	if got != 2 {
		t.Fatalf("diamond has %d linearizations, want 2", got)
	}
}

func TestEnumerateAntichain(t *testing.T) {
	// k independent events have k! linearizations.
	tr := event.NewTrace()
	for i := 0; i < 4; i++ {
		tr.Append(event.ThreadID(i), event.ObjectID(i), event.OpWrite)
	}
	if got := CountLinearizations(tr, 0); got != 24 {
		t.Fatalf("antichain of 4 has %d linearizations, want 24", got)
	}
}

func TestEnumerateChain(t *testing.T) {
	tr := event.NewTrace()
	for i := 0; i < 6; i++ {
		tr.Append(0, 0, event.OpWrite)
	}
	if got := CountLinearizations(tr, 0); got != 1 {
		t.Fatalf("chain has %d linearizations, want 1", got)
	}
}

func TestEnumerateLimit(t *testing.T) {
	tr := event.NewTrace()
	for i := 0; i < 6; i++ {
		tr.Append(event.ThreadID(i), event.ObjectID(i), event.OpWrite)
	}
	if got := CountLinearizations(tr, 10); got != 10 {
		t.Fatalf("limited enumeration visited %d, want 10", got)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	tr := event.NewTrace()
	for i := 0; i < 4; i++ {
		tr.Append(event.ThreadID(i), 0, event.OpWrite)
	}
	count := 0
	visited := Enumerate(tr, 0, func([]int) bool {
		count++
		return count < 1 // stop after the first
	})
	if visited != 1 {
		t.Fatalf("visited %d, want 1", visited)
	}
}

func TestEnumerateAllLegal(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := randomTrace(rng, 3, 3, 8)
	seen := map[string]bool{}
	Enumerate(tr, 0, func(perm []int) bool {
		if !IsLinearization(tr, perm) {
			t.Fatalf("enumerated illegal permutation %v", perm)
		}
		key := fmtInts(perm)
		if seen[key] {
			t.Fatalf("duplicate linearization %v", perm)
		}
		seen[key] = true
		return true
	})
	if len(seen) == 0 {
		t.Fatal("no linearizations enumerated")
	}
}

// TestClockValidityIsScheduleIndependent: the mixed clock built for a
// computation stays valid on every interleaving of that computation — the
// components depend only on the bipartite graph, which all interleavings
// share.
func TestClockValidityIsScheduleIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 5; trial++ {
		tr := randomTrace(rng, 3, 3, 15)
		analysis := core.AnalyzeTrace(tr)
		for k := 0; k < 5; k++ {
			perm := RandomLinearization(tr, rng)
			re, err := Reorder(tr, perm)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := clock.RunAndValidate(re, core.NewMixedClock(analysis.Components)); err != nil {
				t.Fatalf("trial %d order %d: %v", trial, k, err)
			}
		}
	}
}

func randomTrace(rng *rand.Rand, threads, objects, events int) *event.Trace {
	tr := event.NewTrace()
	for i := 0; i < events; i++ {
		tr.Append(event.ThreadID(rng.Intn(threads)), event.ObjectID(rng.Intn(objects)), event.OpWrite)
	}
	return tr
}

func fmtInts(xs []int) string {
	out := make([]byte, 0, len(xs)*3)
	for _, x := range xs {
		out = append(out, byte('0'+x/10), byte('0'+x%10), ',')
	}
	return string(out)
}
