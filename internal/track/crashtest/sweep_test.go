// Package crashtest is the exhaustive crash-point sweep for the durable
// store: it runs a deterministic workload (spilling, epoch compaction,
// tiered segment merging, retention, shipping) over vfs.Faulty once to count
// the workload's durable filesystem operations, then re-runs it once per
// operation index k with the filesystem frozen at exactly op k — every
// possible power-cut point — and recovers each frozen directory with the
// real filesystem, demanding the full crash-consistency contract every time:
//
//   - track.Open never panics and never errors on damage;
//   - the recovered sealed extent, epoch, and retention floor are exactly
//     what the frozen directory's catalog promised;
//   - quarantines are sound — only orphans and temp files, never a
//     catalog-listed segment (listed files are synced and renamed before
//     the listing lands, so a crash cannot tear them);
//   - the recovered records are prefix-consistent with a fault-free
//     reference run: identical (event, epoch, stamp) triples at identical
//     global indices;
//   - committing resumes at the recovered index, and a Close/reopen round
//     trip is clean with no new quarantines.
//
// The sweep is exhaustive by construction: determinism of both the workload
// (single goroutine, count-based policies only) and the injector (op
// indices independent of prior fates) means crash point k reproduces the
// same frozen directory every run. CRASHTEST_FULL=1 widens the matrix for
// nightly CI.
package crashtest

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mixedclock/internal/event"
	"mixedclock/internal/tlog"
	"mixedclock/internal/track"
	"mixedclock/internal/vclock"
	"mixedclock/internal/vfs"
)

// record is one reference triple: an event, the epoch it was recorded in,
// and its stamp.
type record struct {
	e     event.Event
	epoch int
	v     vclock.Vector
}

// recordSink collects cloned records from a Stream.
type recordSink []record

func (s *recordSink) ConsumeStamp(e event.Event, epoch int, v vclock.Vector) error {
	*s = append(*s, record{e, epoch, v.Clone()})
	return nil
}

// sweepConfig is one cell of the sweep matrix: a storage policy set plus a
// deterministic commit/compact schedule. Only count-based policies appear —
// wall-clock triggers (SealInterval, MaxAge) would make the durable-op
// sequence nondeterministic and the sweep unsound.
type sweepConfig struct {
	name      string
	spill     track.SpillPolicy
	compact   track.CompactPolicy
	retain    track.RetainPolicy
	rounds    int         // commit rounds; each round commits len(threads) events
	compactAt map[int]int // rounds after which an explicit Compact() closes the epoch
}

// store assembles the config's Store around the given filesystem.
func (c sweepConfig) store(fsys vfs.FS) track.Store {
	return track.Store{Spill: c.spill, Compact: c.compact, Retain: c.retain, FS: fsys}
}

// drive runs the deterministic commit schedule against an open tracker:
// three threads round-robin reads and writes over two objects, with epoch
// compactions at the scheduled rounds. Lifecycle errors are swallowed — on
// a crash-frozen filesystem every seal and compaction fails, which is
// exactly the scenario under test; commits themselves never touch the
// filesystem and always succeed.
func drive(tr *track.Tracker, c sweepConfig) {
	threads := []*track.Thread{tr.NewThread("t0"), tr.NewThread("t1"), tr.NewThread("t2")}
	objects := []*track.Object{tr.NewObject("o0"), tr.NewObject("o1")}
	for r := 0; r < c.rounds; r++ {
		for i, th := range threads {
			o := objects[(r+i)%len(objects)]
			if (r+i)%3 == 0 {
				th.Read(o, nil)
			} else {
				th.Write(o, nil)
			}
		}
		if c.compactAt[r] != 0 {
			_, _, _ = tr.Compact()
		}
	}
}

// openAndRun opens dir with the given store and drives the workload. The
// tracker comes back not yet Closed; an Open error (possible only when the
// filesystem is already frozen) comes back as nil tracker.
func openAndRun(dir string, st track.Store, c sweepConfig) (*track.Tracker, error) {
	tr, err := track.Open(dir, track.WithStore(st))
	if err != nil {
		return nil, err
	}
	drive(tr, c)
	return tr, nil
}

// referenceRecords runs the workload fault-free with retention disabled —
// retention deletes files but never changes a single stamp, so the run is
// record-identical to the real config — and returns every (event, epoch,
// stamp) triple the workload commits. This is the ground truth every
// crash-recovered directory is compared against.
func referenceRecords(t *testing.T, c sweepConfig) []record {
	t.Helper()
	st := c.store(nil)
	st.Retain = track.RetainPolicy{}
	tr, err := openAndRun(t.TempDir(), st, c)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var ref recordSink
	if err := tr.Stream(&ref); err != nil {
		t.Fatal(err)
	}
	if len(ref) != tr.Events() {
		t.Fatalf("reference run streamed %d records for %d events", len(ref), tr.Events())
	}
	return ref
}

// countDurableOps runs the workload fault-free through an injector and
// returns how many durable operations it performs — the size of the crash
// sweep's index space.
func countDurableOps(t *testing.T, c sweepConfig) int64 {
	t.Helper()
	fi := vfs.NewFaulty(vfs.OS)
	tr, err := openAndRun(t.TempDir(), c.store(fi), c)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	return fi.Ops()
}

// frozenExpectation reads the crash-frozen directory's catalog the way
// recovery will — catalog.json first, the .prev fallback second — and
// returns the recovery contract it promises: the sealed extent, the resume
// epoch, the retention floor, and the set of listed segment files (which
// must never be quarantined). A directory with no catalog promises a fresh
// start.
func frozenExpectation(t *testing.T, dir string) (sealed, epoch, floor int, listed map[string]bool) {
	t.Helper()
	listed = map[string]bool{}
	cat := readFrozenCatalog(t, dir)
	if cat == nil {
		return 0, 0, 0, listed
	}
	for _, sg := range cat.Segments {
		if sg.Path != "" {
			listed[sg.Path] = true
		}
	}
	if cat.Resume != nil {
		epoch = cat.Resume.Epoch
	}
	return cat.SealedEvents, epoch, cat.RetainedEvents, listed
}

func readFrozenCatalog(t *testing.T, dir string) *tlog.Catalog {
	t.Helper()
	for _, name := range []string{tlog.CatalogFileName, tlog.CatalogPrevFileName} {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		cat, err := tlog.DecodeCatalog(f)
		f.Close()
		if err != nil {
			// Crash freezes never tear a file: a catalog that exists decodes.
			t.Fatalf("frozen %s is unreadable: %v", name, err)
		}
		return cat
	}
	return nil
}

// verifyCrashPoint opens one crash-frozen directory with the real
// filesystem and checks the whole recovery contract against the reference.
func verifyCrashPoint(t *testing.T, dir string, k int64, ref []record) {
	t.Helper()
	wantSealed, wantEpoch, wantFloor, listed := frozenExpectation(t, dir)

	re, err := track.Open(dir)
	if err != nil {
		t.Fatalf("k=%d: Open after crash: %v", k, err)
	}
	ri := re.Recovery()
	if ri == nil {
		t.Fatalf("k=%d: no RecoveryInfo", k)
	}
	if ri.Events != wantSealed {
		t.Fatalf("k=%d: recovered %d sealed events, catalog promised %d", k, ri.Events, wantSealed)
	}
	if ri.Epoch != wantEpoch {
		t.Fatalf("k=%d: resumed epoch %d, catalog promised %d (quarantined %v)", k, ri.Epoch, wantEpoch, ri.Quarantined)
	}
	if ri.RetainedFloor != wantFloor {
		t.Fatalf("k=%d: retention floor %d, catalog promised %d", k, ri.RetainedFloor, wantFloor)
	}
	// Quarantine soundness: only orphans and temps may be set aside. A
	// listed segment is synced and renamed before its listing lands, so a
	// crash can never damage one.
	for _, q := range ri.Quarantined {
		orig := strings.TrimSuffix(filepath.Base(q), tlog.QuarantineSuffix)
		if listed[orig] {
			t.Fatalf("k=%d: catalog-listed segment %s was quarantined", k, orig)
		}
	}

	// Prefix consistency: the recovered records above the floor are exactly
	// the reference records at the same global indices — same event, same
	// epoch, equal stamp.
	var got recordSink
	if err := re.Stream(&got); err != nil {
		t.Fatalf("k=%d: Stream after recovery: %v", k, err)
	}
	if len(got) != wantSealed-wantFloor {
		t.Fatalf("k=%d: recovered %d records over [%d,%d)", k, len(got), wantFloor, wantSealed)
	}
	for i, r := range got {
		want := ref[wantFloor+i]
		if r.e != want.e || r.epoch != want.epoch || !r.v.Equal(want.v) {
			t.Fatalf("k=%d: record %d diverges from reference:\n got (%v, epoch %d, %v)\nwant (%v, epoch %d, %v)",
				k, wantFloor+i, r.e, r.epoch, r.v, want.e, want.epoch, want.v)
		}
	}

	// Committing resumes exactly at the recovered extent.
	th := re.NewThread("resume-t")
	ob := re.NewObject("resume-o")
	if s := th.Write(ob, nil); s.Event.Index != wantSealed {
		t.Fatalf("k=%d: resumed commit at index %d, want %d", k, s.Event.Index, wantSealed)
	}
	if err := re.Close(); err != nil {
		t.Fatalf("k=%d: Close after recovery: %v", k, err)
	}

	// The repaired directory reopens cleanly: Close marker present, no new
	// quarantines, every event accounted for.
	re2, err := track.Open(dir)
	if err != nil {
		t.Fatalf("k=%d: second Open: %v", k, err)
	}
	ri2 := re2.Recovery()
	if !ri2.CleanClose {
		t.Fatalf("k=%d: Close marker lost across reopen", k)
	}
	if len(ri2.Quarantined) != 0 {
		t.Fatalf("k=%d: repaired directory quarantined again: %v", k, ri2.Quarantined)
	}
	if got, want := re2.Events(), wantSealed+1; got != want {
		t.Fatalf("k=%d: reopened at %d events, want %d", k, got, want)
	}
	if err := re2.Close(); err != nil {
		t.Fatalf("k=%d: second Close: %v", k, err)
	}
}

// sweep is one full crash-point sweep for one config.
func sweep(t *testing.T, c sweepConfig) {
	ref := referenceRecords(t, c)
	n := countDurableOps(t, c)
	if n == 0 {
		t.Fatalf("workload %q performs no durable operations; nothing to sweep", c.name)
	}
	base := t.TempDir()
	for k := int64(0); k < n; k++ {
		dir := filepath.Join(base, fmt.Sprintf("k%d", k))
		fi := vfs.NewFaulty(vfs.OS)
		fi.CrashAt(k)
		tr, err := openAndRun(dir, c.store(fi), c)
		if tr != nil {
			_ = tr.Close() // fails on the frozen filesystem; that IS the crash
		} else if err == nil {
			t.Fatalf("k=%d: Open returned neither tracker nor error", k)
		}
		if !fi.Crashed() {
			t.Fatalf("k=%d: crash point inside [0,%d) never reached", k, n)
		}
		verifyCrashPoint(t, dir, k, ref)
	}
}

// sweepConfigs is the matrix: the default run covers one config exercising
// every subsystem at once (spilling, epoch compaction, tiered merging,
// retention); CRASHTEST_FULL=1 — the nightly job — adds per-subsystem
// configs so each lifecycle path is also swept in isolation.
func sweepConfigs() []sweepConfig {
	full := sweepConfig{
		name:      "full",
		spill:     track.SpillPolicy{SealEvents: 4},
		compact:   track.CompactPolicy{MaxSegments: 2},
		retain:    track.RetainPolicy{MaxBytes: 1},
		rounds:    8,
		compactAt: map[int]int{2: 1, 5: 1},
	}
	if os.Getenv("CRASHTEST_FULL") == "" {
		return []sweepConfig{full}
	}
	return []sweepConfig{
		full,
		{
			name:   "spill-only",
			spill:  track.SpillPolicy{SealEvents: 3},
			rounds: 8,
		},
		{
			name:      "compaction",
			spill:     track.SpillPolicy{SealEvents: 3},
			compact:   track.CompactPolicy{MaxSegments: 1},
			rounds:    10,
			compactAt: map[int]int{3: 1, 7: 1},
		},
		{
			name:      "retention",
			spill:     track.SpillPolicy{SealEvents: 2},
			retain:    track.RetainPolicy{MaxBytes: 1},
			rounds:    10,
			compactAt: map[int]int{2: 1, 4: 1, 7: 1},
		},
	}
}

// TestCrashSweep is the exhaustive sweep: every durable-op index of every
// matrix config is a crash point, and every crash point must recover.
func TestCrashSweep(t *testing.T) {
	for _, c := range sweepConfigs() {
		t.Run(c.name, func(t *testing.T) { sweep(t, c) })
	}
}
