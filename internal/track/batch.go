// Batched commits: the amortized fast path for high-rate producers.
//
// A plain Do pays, per event: one object-stripe acquisition, one world
// read-lock shard hold, one cover-generation load, and one atomic
// trace-index fetch. The clock work itself is O(changed components) and
// allocation-free, so at high event rates those four synchronization
// round-trips ARE the commit cost. DoBatch pays each of them once for a
// whole run of operations on one object; the Batch builder extends that to
// mixed-object runs by splitting them into maximal same-object (same
// stripe) runs, preserving program order exactly.
//
// The linearization rule. Trace-index order must remain a linearization of
// happened-before (index order refines both program order and per-object
// order — world.go). A batch preserves this by claiming its whole index
// range [base, base+n) with a single seq.Add(n) while it already holds the
// object's commit exclusion and a world read-lock shard:
//
//   - Program order: indices within the batch are assigned in op order, and
//     the thread's next commit fetches a later index (seq is monotonic).
//   - Object order: any other thread's commit on the same object either
//     released the stripe before this batch took it (its indices were
//     claimed earlier, so they are all below base) or waits for the stripe
//     (its indices are all at or above base+n). The batch's indices are
//     contiguous and totally ordered by the one stripe hold.
//   - Causality out of the batch can only flow through the object's stripe
//     after the batch releases it, by which time every batch index is
//     claimed and below the observer's.
//   - Epochs: the whole batch commits under one world read-lock hold, so a
//     concurrent Compact (which takes the write side) lands entirely
//     before or entirely after it — every operation of a batch belongs to
//     one epoch.
//
// The cover is observed once per batch. Its answer can only be one reveal
// behind a racing discovery on another thread — the same staleness any
// single Do tolerates — and the batch's own edge is revealed by that one
// call, so the cover invariant (at least one covered endpoint) holds for
// every operation in the batch.
package track

import (
	"fmt"

	"mixedclock/internal/event"
)

// DoBatch commits ops as len(ops) consecutive operations by th on o,
// paying the per-commit synchronization — object stripe, world read-lock
// shard, cover fetch, trace-index fetch — once for the whole batch instead
// of once per event. The returned stamps correspond to ops in order and are
// identical (events, epoch, timestamps) to what the equivalent loop of Do
// calls would have produced; the operations occupy a contiguous range of
// the trace, totally ordered by the single stripe hold (see the package
// comment's linearization rule). All operations of a batch belong to one
// epoch.
//
// Unlike Do, DoBatch runs no user function and holds the object exclusively
// even for reads: a batch is pure commit work, so there is no callback to
// overlap and the exclusive hold is briefer than n shared acquisitions.
// A nil or empty ops returns nil without committing anything.
func (th *Thread) DoBatch(o *Object, ops []event.Op) []Stamped {
	if len(ops) == 0 {
		return nil
	}
	out := make([]Stamped, len(ops))
	th.doBatch(o, ops, out)
	if th.t.sealArmed.Load() {
		th.t.maybeAutoSeal()
	}
	return out
}

// doBatch is the lock-holding core of DoBatch: one stripe hold, one world
// read-lock hold, one cover observation and one index-range claim cover
// every op. out must have len(ops) entries.
func (th *Thread) doBatch(o *Object, ops []event.Op, out []Stamped) {
	t := th.t
	if t != o.t {
		panic(fmt.Sprintf("track: thread %q and object %q belong to different trackers", th.name, o.name))
	}
	if t.closed.Load() {
		panic(fmt.Sprintf("track: thread %q: DoBatch on a closed Tracker", th.name))
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	t.world.RLock(th.shard)
	defer t.world.RUnlock(th.shard)
	// Pin before loading any reclaimer-protected pointer; one pin spans
	// the whole batch.
	th.rec.pin(&t.reclaim)
	defer th.rec.unpin()
	cover := t.cover.Load()
	thrIdx, objIdx, width := cover.Observe(th.id, o.id)
	base := int(t.seq.Add(int64(len(ops)))) - len(ops)
	for i, op := range ops {
		out[i] = t.commitOne(th, o, op, base+i, thrIdx, objIdx, width)
	}
}

// Batch accumulates operations by one thread across any objects and commits
// them in one call. Commit splits the accumulated run into maximal
// consecutive same-object (same stripe) sub-runs and commits each through
// the batched path, so program order — the order of the Add calls — is
// preserved exactly while the per-commit synchronization is paid once per
// sub-run instead of once per operation. Like its Thread, a Batch must be
// used by one goroutine at a time; it is reusable after Commit.
type Batch struct {
	th   *Thread
	objs []*Object
	ops  []event.Op
}

// NewBatch returns an empty batch for the thread.
func (th *Thread) NewBatch() *Batch { return &Batch{th: th} }

// Add appends one operation on o to the batch and returns the batch for
// chaining. Nothing commits until Commit.
func (b *Batch) Add(o *Object, op event.Op) *Batch {
	b.objs = append(b.objs, o)
	b.ops = append(b.ops, op)
	return b
}

// Write is shorthand for Add(o, event.OpWrite).
func (b *Batch) Write(o *Object) *Batch { return b.Add(o, event.OpWrite) }

// Read is shorthand for Add(o, event.OpRead).
func (b *Batch) Read(o *Object) *Batch { return b.Add(o, event.OpRead) }

// Len reports how many operations are accumulated and not yet committed.
func (b *Batch) Len() int { return len(b.ops) }

// Commit commits every accumulated operation, in Add order, and resets the
// batch for reuse. The returned stamps correspond to the Add calls in
// order. Consecutive operations on the same object share one stripe hold
// and one trace-index fetch; operations of one sub-run are contiguous in
// the trace, and sub-runs commit in program order (later sub-runs get
// higher indices). An empty batch returns nil.
func (b *Batch) Commit() []Stamped {
	if len(b.ops) == 0 {
		return nil
	}
	out := make([]Stamped, len(b.ops))
	for i := 0; i < len(b.ops); {
		j := i + 1
		for j < len(b.ops) && b.objs[j] == b.objs[i] {
			j++
		}
		b.th.doBatch(b.objs[i], b.ops[i:j], out[i:j])
		i = j
	}
	b.objs = b.objs[:0]
	b.ops = b.ops[:0]
	if b.th.t.sealArmed.Load() {
		b.th.t.maybeAutoSeal()
	}
	return out
}
