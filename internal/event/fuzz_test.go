package event

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSONL checks the trace parser never panics and that everything it
// accepts survives a write/read round trip.
func FuzzReadJSONL(f *testing.F) {
	f.Add(`{"i":0,"t":1,"o":0}` + "\n")
	f.Add(`{"i":0,"t":0,"o":0,"op":1}` + "\n" + `{"i":1,"t":2,"o":3}` + "\n")
	f.Add("")
	f.Add("{}\n")
	f.Add(`{"t":-1,"o":0}` + "\n")
	f.Add("not json at all")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadJSONL(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted trace fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatalf("re-encoding accepted trace: %v", err)
		}
		back, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatalf("re-parsing own output: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip changed length: %d -> %d", tr.Len(), back.Len())
		}
		for i := 0; i < tr.Len(); i++ {
			if back.At(i) != tr.At(i) {
				t.Fatalf("round trip changed event %d", i)
			}
		}
	})
}
