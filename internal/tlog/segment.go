package tlog

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// Segment container (magic "MVCSEG01"): an immutable, self-contained slice
// of a timestamped computation — the unit the live tracker seals its
// per-thread arenas into at epoch barriers, holds in memory, and spills to
// disk under a track.SpillPolicy. The payload is a complete MVCLOG02 delta
// stream (each thread's first record in a segment is a full vector, so every
// segment decodes without outside state), wrapped in a header that restores
// what the delta wire format deliberately drops:
//
//   - the global trace position (FirstIndex) and epoch of the records, so
//     stitched segments keep their place in the full computation;
//   - the clock width at each record (run-length encoded — the width only
//     moves when the component set grows), so reconstructed stamps come back
//     at the exact length the tracker's materializing snapshot would give
//     them.
//
// Layout after the 8-byte magic, all integers uvarint:
//
//	epoch | firstIndex | count | runCount | runCount × (runLen, width) |
//	payloadLen | payload
//
// Segments are self-delimiting, so spill files may hold several in sequence
// and a file truncated by a crash is readable up to the last complete
// record: a cut inside the payload surfaces as ErrTruncated from the record
// iterator with every earlier record intact, matching the log formats'
// recovery contract.

// magicSegment identifies the segment container format.
var magicSegment = [8]byte{'M', 'V', 'C', 'S', 'E', 'G', '0', '1'}

// SegmentMeta describes a sealed segment: which epoch its records belong to,
// the global trace index of its first record, and how many records it holds.
type SegmentMeta struct {
	Epoch      int
	FirstIndex int
	Count      int
}

// SegmentFileName is the canonical spill-file name for a segment: the
// global index range keeps names unique and sortable, the tracker's spill
// path and compaction's merged files both follow it, and the offline tools
// write the same names so a directory stays self-describing.
func SegmentFileName(m SegmentMeta) string {
	return fmt.Sprintf("seg-%010d-%010d.mvcseg", m.FirstIndex, m.FirstIndex+m.Count-1)
}

// String renders the meta as "epoch 2, events [100,199]".
func (m SegmentMeta) String() string {
	if m.Count == 0 {
		return fmt.Sprintf("epoch %d, empty", m.Epoch)
	}
	return fmt.Sprintf("epoch %d, events [%d,%d]", m.Epoch, m.FirstIndex, m.FirstIndex+m.Count-1)
}

// AppendSegment encodes one segment container to dst and returns the
// extended slice. widths holds the clock width at each record (len must
// equal meta.Count); payload must be a complete MVCLOG02 stream holding
// exactly meta.Count records (as produced by a DeltaWriter fed the segment's
// records in order — the caller owns that invariant; readers verify it).
func AppendSegment(dst []byte, meta SegmentMeta, widths []int, payload []byte) ([]byte, error) {
	if meta.Epoch < 0 || meta.FirstIndex < 0 || meta.Count < 0 {
		return nil, fmt.Errorf("tlog: negative segment meta %+v", meta)
	}
	if len(widths) != meta.Count {
		return nil, fmt.Errorf("tlog: %d widths for %d segment records", len(widths), meta.Count)
	}
	dst = append(dst, magicSegment[:]...)
	dst = binary.AppendUvarint(dst, uint64(meta.Epoch))
	dst = binary.AppendUvarint(dst, uint64(meta.FirstIndex))
	dst = binary.AppendUvarint(dst, uint64(meta.Count))
	// Run-length encode the widths: the clock only widens when the component
	// set grows, so a segment typically carries a handful of runs.
	var runs int
	for i := 0; i < len(widths); {
		if widths[i] < 0 || widths[i] > maxComponents {
			return nil, fmt.Errorf("tlog: segment record %d has width %d", i, widths[i])
		}
		j := i
		for j+1 < len(widths) && widths[j+1] == widths[i] {
			j++
		}
		runs++
		i = j + 1
	}
	dst = binary.AppendUvarint(dst, uint64(runs))
	for i := 0; i < len(widths); {
		j := i
		for j+1 < len(widths) && widths[j+1] == widths[i] {
			j++
		}
		dst = binary.AppendUvarint(dst, uint64(j-i+1))
		dst = binary.AppendUvarint(dst, uint64(widths[i]))
		i = j + 1
	}
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...), nil
}

// widthRun is one decoded run of the width table.
type widthRun struct {
	n     int
	width int
}

// SegmentReader iterates one segment's records. Open it with
// NewSegmentReader; to read a multi-segment spill file, hand the same
// *bufio.Reader to NewSegmentReader repeatedly until it reports io.EOF.
type SegmentReader struct {
	meta SegmentMeta
	r    *Reader
	lr   *io.LimitedReader
	runs []widthRun
	// run/runPos locate the next record in the width table; read counts
	// records already returned.
	run, runPos, read int
	// pad is the retained buffer records narrower than their clock width
	// are padded in, so steady-state iteration allocates nothing.
	pad vclock.Vector
}

// NewSegmentReader reads a segment header from r and returns an iterator
// over its records. io.EOF means r held no further segment (a clean end);
// ErrTruncated means the header itself was cut short. If r is not already a
// *bufio.Reader it is wrapped in one, which reads ahead — callers iterating
// multi-segment streams must therefore pass the same *bufio.Reader for
// every call.
func NewSegmentReader(r io.Reader) (*SegmentReader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	head, err := br.Peek(len(magicSegment))
	if err == io.EOF && len(head) == 0 {
		return nil, io.EOF
	}
	if err == io.EOF {
		return nil, fmt.Errorf("%w: segment header", ErrTruncated)
	}
	if err != nil {
		return nil, fmt.Errorf("tlog: reading segment header: %w", err)
	}
	if [8]byte(head) != magicSegment {
		return nil, ErrBadMagic
	}
	if _, err := br.Discard(len(magicSegment)); err != nil {
		return nil, fmt.Errorf("tlog: discarding segment header: %w", err)
	}
	field := func(name string) (uint64, error) {
		x, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("%w: segment %s field: %v", ErrTruncated, name, err)
		}
		return x, nil
	}
	bounded := func(name string, max uint64) (uint64, error) {
		x, err := field(name)
		if err != nil {
			return 0, err
		}
		if x > max {
			return 0, fmt.Errorf("%w: segment %s %d", ErrCorrupt, name, x)
		}
		return x, nil
	}
	epoch, err := bounded("epoch", maxID)
	if err != nil {
		return nil, err
	}
	first, err := bounded("first index", maxID)
	if err != nil {
		return nil, err
	}
	count, err := bounded("record count", maxID)
	if err != nil {
		return nil, err
	}
	runCount, err := bounded("width run count", count)
	if err != nil {
		return nil, err
	}
	sr := &SegmentReader{meta: SegmentMeta{Epoch: int(epoch), FirstIndex: int(first), Count: int(count)}}
	// Each run consumes at least two input bytes, so growing the run table
	// incrementally keeps allocation proportional to bytes actually read.
	var total uint64
	for i := uint64(0); i < runCount; i++ {
		n, err := field("width run length")
		if err != nil {
			return nil, err
		}
		w, err := bounded("width", maxComponents)
		if err != nil {
			return nil, err
		}
		total += n
		if n == 0 || total > count {
			return nil, fmt.Errorf("%w: segment width runs cover %d of %d records", ErrCorrupt, total, count)
		}
		sr.runs = append(sr.runs, widthRun{n: int(n), width: int(w)})
	}
	if total != count {
		return nil, fmt.Errorf("%w: segment width runs cover %d of %d records", ErrCorrupt, total, count)
	}
	payloadLen, err := bounded("payload length", 1<<62)
	if err != nil {
		return nil, err
	}
	// The payload is framed by its length, so the record iterator can never
	// read past the segment, and a trailing segment in the same stream stays
	// reachable after this one is drained.
	sr.lr = &io.LimitedReader{R: br, N: int64(payloadLen)}
	inner, err := NewReader(sr.lr)
	if err != nil {
		return nil, fmt.Errorf("tlog: segment payload: %w", err)
	}
	if count > 0 && !inner.delta {
		return nil, fmt.Errorf("%w: segment payload is not a delta stream", ErrCorrupt)
	}
	sr.r = inner
	return sr, nil
}

// Meta returns the segment's header.
func (sr *SegmentReader) Meta() SegmentMeta { return sr.meta }

// Next returns the next record: the event (with its global trace index
// restored) and its stamp grown to the record's clock width. The vector
// aliases the reader's internal state and is valid only until the next call;
// clone it to retain it. Next reports io.EOF after the segment's last
// record, ErrTruncated when the payload stops mid-segment, and ErrCorrupt
// when the payload disagrees with the header.
func (sr *SegmentReader) Next() (event.Event, vclock.Vector, error) {
	if sr.read == sr.meta.Count {
		// All records delivered; the payload must be exactly used up, or
		// the header lied about the count. Probing the inner reader (rather
		// than checking the length frame) also drains the frame, leaving a
		// shared *bufio.Reader positioned at the next segment.
		if _, _, err := sr.r.NextShared(); err == nil {
			return event.Event{}, nil, fmt.Errorf("%w: segment payload holds more than %d records", ErrCorrupt, sr.meta.Count)
		} else if err != io.EOF {
			return event.Event{}, nil, fmt.Errorf("%w: trailing segment payload bytes: %v", ErrCorrupt, err)
		}
		return event.Event{}, nil, io.EOF
	}
	e, v, err := sr.r.NextShared()
	if err == io.EOF {
		// The payload ran out before the promised record count.
		return event.Event{}, nil, fmt.Errorf("%w: segment payload ends after %d of %d records", ErrTruncated, sr.read, sr.meta.Count)
	}
	if err != nil {
		return event.Event{}, nil, err
	}
	e.Index = sr.meta.FirstIndex + sr.read
	width := sr.runs[sr.run].width
	sr.runPos++
	if sr.runPos == sr.runs[sr.run].n {
		sr.run, sr.runPos = sr.run+1, 0
	}
	sr.read++
	if len(v) < width {
		// Pad to the recorded clock width in the retained buffer (the
		// reconstruction state's own storage grows exactly, so growing it
		// per record would allocate per record).
		sr.pad = sr.pad.Grow(width)
		n := copy(sr.pad, v)
		for i := n; i < width; i++ {
			sr.pad[i] = 0
		}
		v = sr.pad[:width]
	}
	return e, v, nil
}
