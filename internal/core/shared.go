package core

import (
	"sync"
	"sync/atomic"

	"mixedclock/internal/bipartite"
	"mixedclock/internal/event"
)

// SharedCover makes a CoverTracker safe for concurrent revealers. It is the
// component-discovery path of the live tracker (package track): many
// goroutines observe (thread, object) pairs at once, but after a short
// warm-up almost every pair has been seen before, so the common case must
// not take any lock at all.
//
// Observe is the single entry point for the hot path. It answers everything
// the §III-C update rule needs for an event: which of the two endpoints are
// clock components (their indices) and the current clock width. The steady
// state is served from an immutable generation — a snapshot of the revealed
// edge set plus the component-index tables — behind one atomic pointer:
// one load, one map probe, two slice reads, no read-modify-write on any
// shared cache line. Only a genuinely new edge takes the mutex, runs the
// mechanism, and publishes a rebuilt generation (revealed edges only ever
// add components, §IV, so a reader on the previous generation is merely one
// reveal behind — the same answer it would have gotten a moment earlier).
//
// Superseded generations are immutable and safe to read forever; an
// optional retire hook (OnRetire) hands each one to the caller so its
// release can be tracked through epoch-based reclamation instead of
// vanishing silently into the garbage collector.
type SharedCover struct {
	// gen is the current immutable generation; never nil after
	// NewSharedCover.
	gen atomic.Pointer[coverGen]
	// mu serializes revealers and the read-only accessors that walk the
	// underlying CoverTracker directly (Graph, Mechanism, Components).
	mu sync.Mutex
	ct *CoverTracker
	// retire, when set, receives each superseded generation after its
	// replacement is published.
	retire func(old any)
}

// coverGen is one immutable snapshot of the discovery state: the revealed
// edge set and, per endpoint ID, the component index (-1 when the endpoint
// is not a component), plus the clock width. Readers hold it only while
// resolving one Observe; it is never mutated after publication.
type coverGen struct {
	edges  map[uint64]struct{}
	thrIdx []int
	objIdx []int
	width  int
}

// edgeKey packs a (thread, object) edge into one map key.
func edgeKey(t event.ThreadID, o event.ObjectID) uint64 {
	return uint64(uint32(t))<<32 | uint64(uint32(o))
}

// NewSharedCover wraps ct for concurrent use. The SharedCover owns ct
// afterwards; callers must not keep revealing through ct directly.
func NewSharedCover(ct *CoverTracker) *SharedCover {
	s := &SharedCover{ct: ct}
	s.gen.Store(s.rebuildLocked())
	return s
}

// OnRetire sets the hook that receives each superseded generation (an
// opaque immutable value) once its replacement is published. Set it before
// the cover is shared; the hook runs on whichever goroutine revealed the
// replacing edge, outside the cover's mutex.
func (s *SharedCover) OnRetire(f func(old any)) { s.retire = f }

// Observe reveals the edge (t, o) if it is new and returns the tick plan for
// the event: the component indices of thread t and object o (-1 when the
// endpoint is not a component) and the current clock width. The cover
// invariant guarantees at least one index is non-negative for any edge the
// mechanism has processed. The revealed-edge steady state is lock-free.
func (s *SharedCover) Observe(t event.ThreadID, o event.ObjectID) (thrIdx, objIdx, width int) {
	g := s.gen.Load()
	if _, ok := g.edges[edgeKey(t, o)]; ok && int(t) < len(g.thrIdx) && int(o) < len(g.objIdx) {
		return g.thrIdx[t], g.objIdx[o], g.width
	}
	return s.reveal(t, o)
}

// reveal is Observe's slow path: run the mechanism on the new edge and
// publish a rebuilt generation. Duplicate reveals (two goroutines racing
// the same new edge) are harmless — Reveal coalesces them.
func (s *SharedCover) reveal(t event.ThreadID, o event.ObjectID) (thrIdx, objIdx, width int) {
	s.mu.Lock()
	s.ct.Reveal(t, o)
	old := s.gen.Load()
	g := s.rebuildLocked()
	s.gen.Store(g)
	s.mu.Unlock()
	if s.retire != nil {
		s.retire(old)
	}
	return g.thrIdx[t], g.objIdx[o], g.width
}

// rebuildLocked snapshots the CoverTracker into a fresh immutable
// generation. The caller holds s.mu (or is the constructor). Rebuilds are
// O(edges + endpoints) and happen only when the revealed graph grows — a
// bounded number of times per epoch, not per event.
func (s *SharedCover) rebuildLocked() *coverGen {
	edges := s.ct.graph.EdgeList()
	g := &coverGen{
		edges: make(map[uint64]struct{}, len(edges)),
		width: s.ct.comps.Len(),
	}
	maxT, maxO := -1, -1
	for _, e := range edges {
		g.edges[edgeKey(event.ThreadID(e.Thread), event.ObjectID(e.Object))] = struct{}{}
		if e.Thread > maxT {
			maxT = e.Thread
		}
		if e.Object > maxO {
			maxO = e.Object
		}
	}
	g.thrIdx = make([]int, maxT+1)
	g.objIdx = make([]int, maxO+1)
	for i := range g.thrIdx {
		g.thrIdx[i] = -1
		if idx, ok := s.ct.comps.IndexOf(ThreadComponent(event.ThreadID(i))); ok {
			g.thrIdx[i] = idx
		}
	}
	for i := range g.objIdx {
		g.objIdx[i] = -1
		if idx, ok := s.ct.comps.IndexOf(ObjectComponent(event.ObjectID(i))); ok {
			g.objIdx[i] = idx
		}
	}
	return g
}

// Size returns the current vector-clock size. Lock-free.
func (s *SharedCover) Size() int { return s.gen.Load().width }

// Components returns a copy of the current component set.
func (s *SharedCover) Components() []Component {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ct.Components().Components()
}

// ComponentsString renders the component set (for error messages).
func (s *SharedCover) ComponentsString() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ct.Components().String()
}

// Graph returns the revealed thread–object graph. The graph is shared, not
// copied: callers must quiesce all revealers first (the live tracker calls
// this only under its compaction barrier).
func (s *SharedCover) Graph() *bipartite.Graph {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ct.Graph()
}

// Mechanism returns the driving mechanism.
func (s *SharedCover) Mechanism() Mechanism {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ct.Mechanism()
}
