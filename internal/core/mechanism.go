package core

import (
	"fmt"
	"math/rand"

	"mixedclock/internal/bipartite"
)

// Mechanism decides, for a newly revealed event whose edge is not yet
// covered, whether the event's thread or its object joins the component set
// (§IV). Choose is consulted only in that situation: if either endpoint is
// already a component the vector clock stays unchanged.
//
// The graph passed to Choose is the computation revealed so far, including
// the new edge.
type Mechanism interface {
	Name() string
	Choose(g *bipartite.Graph, t, o int) bipartite.Side
}

// NaiveThreads always picks the thread — the paper's first Naive variant,
// which degenerates to the classical thread-based clock (one component per
// active thread).
type NaiveThreads struct{}

// Name implements Mechanism.
func (NaiveThreads) Name() string { return "naive/threads" }

// Choose implements Mechanism.
func (NaiveThreads) Choose(*bipartite.Graph, int, int) bipartite.Side { return bipartite.Threads }

// NaiveObjects always picks the object, degenerating to the object-based
// clock.
type NaiveObjects struct{}

// Name implements Mechanism.
func (NaiveObjects) Name() string { return "naive/objects" }

// Choose implements Mechanism.
func (NaiveObjects) Choose(*bipartite.Graph, int, int) bipartite.Side { return bipartite.Objects }

// Random picks the thread or the object with equal probability (§IV,
// mechanism 2). The RNG is explicit so runs are reproducible.
type Random struct {
	Rng *rand.Rand
}

// Name implements Mechanism.
func (Random) Name() string { return "random" }

// Choose implements Mechanism.
func (r Random) Choose(*bipartite.Graph, int, int) bipartite.Side {
	if r.Rng.Intn(2) == 0 {
		return bipartite.Threads
	}
	return bipartite.Objects
}

// Popularity picks whichever endpoint is more popular on the graph revealed
// so far — pop(v) = deg(v)/|E|, Definition 1 — predicting that popular
// vertices will cover more future edges. Ties go to the thread ("otherwise,
// we choose the thread").
type Popularity struct{}

// Name implements Mechanism.
func (Popularity) Name() string { return "popularity" }

// Choose implements Mechanism.
func (Popularity) Choose(g *bipartite.Graph, t, o int) bipartite.Side {
	// Both degrees include the new edge; |E| cancels in the comparison.
	if g.ObjectDegree(o) > g.ThreadDegree(t) {
		return bipartite.Objects
	}
	return bipartite.Threads
}

// Hybrid is the practical mechanism the paper's evaluation concludes with:
// use Primary (typically Popularity) while the revealed graph is small and
// sparse, and fall back to Fallback (typically NaiveThreads) once the graph
// density or the node count crosses its threshold, where the naive approach
// wins (Figs. 4–5).
type Hybrid struct {
	Primary  Mechanism
	Fallback Mechanism
	// MaxDensity is the revealed-graph density above which Fallback takes
	// over. Zero means DefaultMaxDensity.
	MaxDensity float64
	// MaxNodes is the revealed node count (threads + objects) above which
	// Fallback takes over. Zero means DefaultMaxNodes.
	MaxNodes int
}

// Defaults for Hybrid, taken from where the paper's curves cross: density
// ≈0.2 in Fig. 4 and ≈70 nodes per side (140 total) in Fig. 5.
const (
	DefaultMaxDensity = 0.2
	DefaultMaxNodes   = 140
)

// NewHybrid returns the paper's recommended configuration:
// Popularity first, NaiveThreads beyond the default thresholds.
func NewHybrid() Hybrid {
	return Hybrid{Primary: Popularity{}, Fallback: NaiveThreads{}}
}

// Name implements Mechanism.
func (h Hybrid) Name() string {
	return fmt.Sprintf("hybrid(%s→%s)", h.primary().Name(), h.fallback().Name())
}

func (h Hybrid) primary() Mechanism {
	if h.Primary == nil {
		return Popularity{}
	}
	return h.Primary
}

func (h Hybrid) fallback() Mechanism {
	if h.Fallback == nil {
		return NaiveThreads{}
	}
	return h.Fallback
}

func (h Hybrid) maxDensity() float64 {
	if h.MaxDensity == 0 {
		return DefaultMaxDensity
	}
	return h.MaxDensity
}

func (h Hybrid) maxNodes() int {
	if h.MaxNodes == 0 {
		return DefaultMaxNodes
	}
	return h.MaxNodes
}

// Choose implements Mechanism.
func (h Hybrid) Choose(g *bipartite.Graph, t, o int) bipartite.Side {
	if g.Density() > h.maxDensity() || g.NThreads()+g.NObjects() > h.maxNodes() {
		return h.fallback().Choose(g, t, o)
	}
	return h.primary().Choose(g, t, o)
}
