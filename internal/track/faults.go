// Failure handling for the durable store: transient-error retry, degraded
// mode, and the disk probe that exits it.
//
// Every durable path (seal, catalog publication, directory fsync) runs
// through vfs.FS, so all of this is exercised deterministically by
// vfs.Faulty — see internal/track/crashtest for the exhaustive sweep.
//
// The retry discipline is deliberately coarse: a failed step never retries
// in place. Retrying a bare fsync is unsound — on most filesystems a failed
// fsync may drop the dirty pages, so a later "successful" fsync proves
// nothing about the data that failed. Instead the retried unit is always a
// whole idempotent cycle that rewrites its data from memory (temp file →
// write → fsync → close → rename, or open-dir → fsync). Errors that cannot
// plausibly clear on their own — ENOSPC, a missing file, a permission
// denial — escalate immediately.
package track

import (
	"errors"
	"io/fs"
	"math/rand/v2"
	"syscall"
	"time"

	"mixedclock/internal/vfs"
)

// Retry tuning. Variables, not constants, so fault-injection tests can
// tighten them; production code never mutates them. Retries can run inside
// the seal barrier, so the worst-case added stall is
// retryAttempts·retryMax ≈ 200ms — bounded, and only ever paid while the
// disk is misbehaving.
var (
	// retryAttempts is the total number of tries (first attempt included).
	retryAttempts = 4
	// retryBase and retryMax bound the exponential backoff between tries.
	retryBase = 2 * time.Millisecond
	retryMax  = 50 * time.Millisecond
)

// transientFault classifies err: true means the fault might clear on its
// own (an EIO blip, a failed fsync, a transient rename error) and the cycle
// is worth retrying; false means retrying cannot help — a full disk stays
// full, a missing file stays missing, and a crashed (frozen) vfs.Faulty
// stays crashed.
func transientFault(err error) bool {
	if err == nil {
		return false
	}
	switch {
	case errors.Is(err, syscall.ENOSPC),
		errors.Is(err, fs.ErrNotExist),
		errors.Is(err, fs.ErrPermission),
		errors.Is(err, vfs.ErrCrashed):
		return false
	}
	return true
}

// retryTransient runs cycle, retrying transient-classed failures with
// bounded exponential backoff plus jitter. The cycle must be idempotent and
// self-contained — it rewrites everything it needs from memory, so a retry
// after any partial failure is sound.
func retryTransient(cycle func() error) error {
	var err error
	delay := retryBase
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			// Full jitter: sleep in [delay/2, delay), then double.
			time.Sleep(delay/2 + rand.N(delay/2))
			if delay *= 2; delay > retryMax {
				delay = retryMax
			}
		}
		if err = cycle(); err == nil || !transientFault(err) {
			return err
		}
	}
	return err
}

// Health is a point-in-time report of the tracker's storage health —
// the programmatic counterpart of the published catalog's Health /
// AutoSealDisarmed / DegradedSinceUnix fields.
type Health struct {
	// Degraded reports that a persistent spill failure flipped the tracker
	// into degraded mode: tracking continues fully in memory (commits,
	// snapshots, streams and monitors all keep working), but nothing new
	// reaches disk until the disk recovers. Since is when the flip happened.
	Degraded bool
	Since    time.Time
	// SealDisarmed reports that automatic sealing is currently disarmed
	// (set on entry to degraded mode; cleared by the periodic disk probe,
	// or by an explicit Seal or Compact that succeeds).
	SealDisarmed bool
	// UnsealedEvents is how many committed events sit only in memory. In
	// degraded mode this grows without bound — the price of staying live.
	UnsealedEvents int
	// Err is the tracker's first recorded error (Tracker.Err).
	Err error
}

// Health reports the tracker's storage health. It is cheap — a few atomic
// loads — and safe to call from any goroutine, including Do callbacks.
func (t *Tracker) Health() Health {
	h := Health{
		SealDisarmed:   t.sealBroken.Load(),
		UnsealedEvents: int(t.seq.Load() - t.sealed.Load()),
		Err:            t.Err(),
	}
	if ns := t.degradedSince.Load(); ns != 0 {
		h.Degraded = true
		h.Since = time.Unix(0, ns)
	}
	return h
}

// enterDegraded is the bookkeeping of flipping into degraded mode after an
// auto-seal failure: disarm sealing and stamp the flip time (kept across
// repeated failures — Since is when trouble started). Callers hold no
// locks; the fields are atomic.
func (t *Tracker) enterDegraded() {
	t.sealBroken.Store(true)
	t.degradedSince.CompareAndSwap(0, time.Now().UnixNano())
}

// defaultProbeInterval is how often a degraded tracker probes the spill
// directory when SpillPolicy.Probe is zero.
const defaultProbeInterval = time.Second

// maybeProbe runs on the commit path only while auto-sealing is disarmed:
// at most once per probe interval, one caller wins the CAS and performs a
// cheap disk probe (create, write, fsync, remove a throwaway file). Success
// re-arms auto-sealing, so the next commit seals the accumulated tail and —
// via sealLocked — clears degraded mode and publishes a healthy catalog.
func (t *Tracker) maybeProbe() {
	if t.spill.Dir == "" {
		return
	}
	interval := t.spill.Probe
	if interval <= 0 {
		interval = defaultProbeInterval
	}
	now := time.Now().UnixNano()
	last := t.lastProbeNano.Load()
	if now-last < int64(interval) || !t.lastProbeNano.CompareAndSwap(last, now) {
		return
	}
	if probeSpillDir(t.fs, t.spill.Dir) == nil {
		t.sealBroken.Store(false)
	}
}

// probeSpillDir checks that dir accepts a durable write: a throwaway temp
// file is created, written, fsynced and removed. The ".probe-*.tmp" name is
// in recovery's temp-sweep patterns, so a probe file stranded by a crash is
// cleaned up on the next Open.
func probeSpillDir(fsys vfs.FS, dir string) error {
	if err := fsys.MkdirAll(dir); err != nil {
		return err
	}
	f, err := fsys.CreateTemp(dir, ".probe-*.tmp")
	if err != nil {
		return err
	}
	name := f.Name()
	_, werr := f.Write([]byte("probe"))
	serr := f.Sync()
	cerr := f.Close()
	rerr := fsys.Remove(name)
	for _, e := range []error{werr, serr, cerr, rerr} {
		if e != nil {
			return e
		}
	}
	return nil
}
