package vclock

import "testing"

func TestFlatClockOps(t *testing.T) {
	f := NewFlat(2)
	f.Tick(0)
	f.Tick(3)
	if got := f.Flatten(); !got.Equal(Vector{1, 0, 0, 1}) {
		t.Fatalf("Flatten = %v", got)
	}
	if f.Width() != 4 || f.At(3) != 1 || f.At(10) != 0 {
		t.Fatalf("Width/At wrong: %v", f.Vector())
	}
	g := FlatOf(Vector{0, 5})
	f.Join(g)
	if got := f.Flatten(); !got.Equal(Vector{1, 5, 0, 1}) {
		t.Fatalf("after Join: %v", got)
	}
	if ord := f.Compare(g); ord != After {
		t.Fatalf("Compare = %v, want After", ord)
	}
	if !g.Less(f) || g.Concurrent(f) {
		t.Fatal("Less/Concurrent disagree with Compare")
	}
	c := f.Clone()
	f.Tick(0)
	if c.At(0) != 1 || f.At(0) != 2 {
		t.Fatal("Clone shares storage with original")
	}
	// Flatten must be independent of the clock's future mutations.
	snap := f.Flatten()
	f.Tick(0)
	if snap.At(0) != 2 {
		t.Fatalf("Flatten aliased the clock: %v", snap)
	}
}

func TestFlatClockGrowAndBinary(t *testing.T) {
	f := NewFlat(0)
	f.Grow(3)
	if f.Width() != 3 {
		t.Fatalf("Width = %d", f.Width())
	}
	f.Tick(1)
	want := Vector{0, 1, 0}.AppendBinary(nil)
	if got := f.AppendBinary(nil); string(got) != string(want) {
		t.Fatalf("AppendBinary %x, want %x", got, want)
	}
}

func TestCompareClocksGeneric(t *testing.T) {
	cases := []struct {
		a, b Vector
		want Ordering
	}{
		{nil, nil, Equal},
		{Vector{1, 2}, Vector{1, 2, 0}, Equal},
		{Vector{1, 2}, Vector{1, 3}, Before},
		{Vector{2, 2}, Vector{1, 2}, After},
		{Vector{1, 0}, Vector{0, 1}, Concurrent},
	}
	for _, c := range cases {
		if got := CompareClocks(FlatOf(c.a), FlatOf(c.b)); got != c.want {
			t.Errorf("CompareClocks(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestBackendString(t *testing.T) {
	if BackendFlat.String() != "flat" || BackendTree.String() != "tree" {
		t.Fatal("Backend.String names wrong")
	}
	for _, name := range []string{"flat", "tree"} {
		b, err := ParseBackend(name)
		if err != nil || b.String() != name {
			t.Fatalf("ParseBackend(%q) = %v, %v", name, b, err)
		}
	}
	if _, err := ParseBackend("linked-list"); err == nil {
		t.Fatal("ParseBackend accepted junk")
	}
}
