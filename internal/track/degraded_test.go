package track

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"mixedclock/internal/tlog"
	"mixedclock/internal/vfs"
)

// TestDegradedModeENOSPC is the graceful-degradation acceptance test: a
// persistent ENOSPC on the spill path flips the tracker into degraded mode —
// commits keep succeeding fully in memory, Health and the catalog both say
// so — and once the disk recovers, the periodic probe re-arms auto-sealing,
// the accumulated tail reaches disk, and the published catalog is healthy
// again.
func TestDegradedModeENOSPC(t *testing.T) {
	dir := t.TempDir()
	fi := vfs.NewFaulty(vfs.OS)
	tr, err := Open(dir, WithStore(Store{
		Spill: SpillPolicy{SealEvents: 2, Probe: time.Millisecond},
		FS:    fi,
	}))
	if err != nil {
		t.Fatal(err)
	}
	th := tr.NewThread("t0")
	ob := tr.NewObject("o0")

	// A healthy seal first, so degradation is a transition, not a birth state.
	th.Write(ob, nil)
	th.Write(ob, nil)
	th.Write(ob, nil)
	if h := tr.Health(); h.Degraded || h.SealDisarmed {
		t.Fatalf("degraded before any fault: %+v", h)
	}

	// The disk fills: every durable operation fails with ENOSPC, which the
	// retry layer classifies as non-transient, so the very first failed
	// auto-seal flips degraded mode.
	fi.Script(vfs.Rule{Ops: vfs.MutatingOps, Err: syscall.ENOSPC})
	before := tr.Events()
	for i := 0; i < 20; i++ {
		th.Write(ob, nil)
	}
	if got := tr.Events(); got != before+20 {
		t.Fatalf("commits under ENOSPC: Events %d, want %d", got, before+20)
	}
	h := tr.Health()
	if !h.Degraded || !h.SealDisarmed {
		t.Fatalf("not degraded under persistent ENOSPC: %+v", h)
	}
	if h.Since.IsZero() {
		t.Error("degraded Health has zero Since")
	}
	if h.UnsealedEvents == 0 {
		t.Error("degraded Health reports no unsealed events")
	}
	if h.Err == nil || !errors.Is(h.Err, syscall.ENOSPC) {
		t.Errorf("Health.Err = %v, want ENOSPC", h.Err)
	}
	c := tr.Catalog()
	if !c.AutoSealDisarmed {
		t.Error("catalog does not report auto-seal disarmed")
	}
	if c.DegradedSinceUnix == 0 {
		t.Error("catalog does not report degraded-since")
	}

	// The disk recovers. The probe (rate-limited to Probe = 1ms) re-arms
	// auto-sealing from the commit path; the next commit seals the tail and
	// clears degraded mode.
	fi.Heal()
	deadline := time.Now().Add(10 * time.Second)
	for tr.Health().Degraded {
		if time.Now().After(deadline) {
			t.Fatalf("still degraded long after the disk recovered: %+v", tr.Health())
		}
		th.Write(ob, nil)
		time.Sleep(2 * time.Millisecond)
	}
	h = tr.Health()
	if h.SealDisarmed {
		t.Errorf("recovered but auto-seal still disarmed: %+v", h)
	}
	c = tr.Catalog()
	if c.AutoSealDisarmed || c.DegradedSinceUnix != 0 {
		t.Errorf("recovered catalog still degraded: disarmed=%v since=%d", c.AutoSealDisarmed, c.DegradedSinceUnix)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	// The published document agrees, and the directory reopens cleanly with
	// every committed event sealed.
	f, err := os.Open(filepath.Join(dir, tlog.CatalogFileName))
	if err != nil {
		t.Fatal(err)
	}
	cat, err := tlog.DecodeCatalog(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if cat.AutoSealDisarmed || cat.DegradedSinceUnix != 0 {
		t.Errorf("published catalog still degraded: disarmed=%v since=%d", cat.AutoSealDisarmed, cat.DegradedSinceUnix)
	}
	if !cat.Closed {
		t.Error("published catalog not marked Closed")
	}
	reopened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if got, want := reopened.Events(), tr.Events(); got != want {
		t.Errorf("reopened run has %d events, want %d", got, want)
	}
}

// TestDegradedSinceSticky checks the degraded-since stamp marks the START of
// trouble: repeated seal failures must not advance it.
func TestDegradedSinceSticky(t *testing.T) {
	dir := t.TempDir()
	fi := vfs.NewFaulty(vfs.OS)
	tr, err := Open(dir, WithStore(Store{
		Spill: SpillPolicy{SealEvents: 1, Probe: time.Hour}, // probe never fires
		FS:    fi,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	th := tr.NewThread("t0")
	ob := tr.NewObject("o0")
	fi.Script(vfs.Rule{Ops: vfs.MutatingOps, Err: syscall.ENOSPC})

	th.Write(ob, nil)
	first := tr.Health().Since
	if first.IsZero() {
		t.Fatal("no degraded-since after a failed seal")
	}
	time.Sleep(5 * time.Millisecond)
	th.Write(ob, nil)
	th.Write(ob, nil)
	if again := tr.Health().Since; !again.Equal(first) {
		t.Errorf("degraded-since moved from %v to %v across repeated failures", first, again)
	}
}
