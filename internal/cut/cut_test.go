package cut

import (
	"math/rand"
	"strings"
	"testing"

	"mixedclock/internal/clock"
	"mixedclock/internal/core"
	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// pipelineTrace: T1 writes X, T2 reads X then writes Y, T3 reads Y.
// A clean causal chain e0 → e1 → e2 → e3.
func pipelineTrace() *event.Trace {
	tr := event.NewTrace()
	tr.Append(0, 0, event.OpWrite) // e0: T1 writes X
	tr.Append(1, 0, event.OpRead)  // e1: T2 reads X
	tr.Append(1, 1, event.OpWrite) // e2: T2 writes Y
	tr.Append(2, 1, event.OpRead)  // e3: T3 reads Y
	return tr
}

func stampsFor(t *testing.T, tr *event.Trace) []vclock.Vector {
	t.Helper()
	stamps, err := clock.RunAndValidate(tr, core.AnalyzeTrace(tr).NewClock())
	if err != nil {
		t.Fatal(err)
	}
	return stamps
}

func TestCutIncludesAndSize(t *testing.T) {
	c := Cut{PerThread: []int{2, 0, 1}}
	if !c.Includes(0, 1) || c.Includes(0, 2) {
		t.Error("Includes wrong for thread 0")
	}
	if c.Includes(1, 0) {
		t.Error("thread 1 should be empty")
	}
	if c.Includes(9, 0) {
		t.Error("unknown thread included")
	}
	if c.Size() != 3 {
		t.Errorf("Size = %d, want 3", c.Size())
	}
	if s := c.String(); !strings.Contains(s, "T1:2") {
		t.Errorf("String = %q", s)
	}
}

func TestIsConsistent(t *testing.T) {
	tr := pipelineTrace()
	tests := []struct {
		name string
		cut  Cut
		want bool
	}{
		{"empty", Cut{PerThread: []int{0, 0, 0}}, true},
		{"everything", Cut{PerThread: []int{1, 2, 1}}, true},
		{"prefix", Cut{PerThread: []int{1, 1, 0}}, true},
		{"orphan read", Cut{PerThread: []int{0, 1, 0}}, false},  // e1 without e0
		{"orphan chain", Cut{PerThread: []int{0, 0, 1}}, false}, // e3 without anything
		{"skip middle", Cut{PerThread: []int{1, 0, 1}}, false},  // e3 without e2
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsConsistent(tr, tt.cut); got != tt.want {
				t.Errorf("IsConsistent(%v) = %v, want %v", tt.cut, got, tt.want)
			}
		})
	}
}

func TestRecoveryLinePipeline(t *testing.T) {
	tr := pipelineTrace()
	stamps := stampsFor(t, tr)

	// Fault at e1 (T2's read): e1, e2, e3 are contaminated; only e0
	// survives.
	line, err := RecoveryLine(tr, stamps, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := Cut{PerThread: []int{1, 0, 0}}
	for i := range want.PerThread {
		if line.PerThread[i] != want.PerThread[i] {
			t.Fatalf("recovery line %v, want %v", line, want)
		}
	}
	if !IsConsistent(tr, line) {
		t.Fatal("recovery line inconsistent")
	}

	contaminated := Contaminated(stamps, 1)
	if len(contaminated) != 3 || contaminated[0] != 1 || contaminated[2] != 3 {
		t.Fatalf("Contaminated = %v, want [1 2 3]", contaminated)
	}
}

func TestRecoveryLineFaultAtSink(t *testing.T) {
	tr := pipelineTrace()
	stamps := stampsFor(t, tr)
	// Fault at the last event: everything else survives.
	line, err := RecoveryLine(tr, stamps, 3)
	if err != nil {
		t.Fatal(err)
	}
	if line.Size() != 3 {
		t.Fatalf("size = %d, want 3 (%v)", line.Size(), line)
	}
	if !IsConsistent(tr, line) {
		t.Fatal("inconsistent")
	}
}

func TestRecoveryLineErrors(t *testing.T) {
	tr := pipelineTrace()
	stamps := stampsFor(t, tr)
	if _, err := RecoveryLine(tr, stamps[:2], 0); err == nil {
		t.Error("stamp count mismatch accepted")
	}
	if _, err := RecoveryLine(tr, stamps, -1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := RecoveryLine(tr, stamps, 99); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestRecoveryLineAlwaysConsistentAndMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		tr := event.NewTrace()
		for i := 0; i < 30; i++ {
			tr.Append(event.ThreadID(rng.Intn(4)), event.ObjectID(rng.Intn(4)), event.OpWrite)
		}
		stamps := stampsFor(t, tr)
		for bad := 0; bad < tr.Len(); bad += 7 {
			line, err := RecoveryLine(tr, stamps, bad)
			if err != nil {
				t.Fatal(err)
			}
			if !IsConsistent(tr, line) {
				t.Fatalf("trial %d bad %d: inconsistent recovery line", trial, bad)
			}
			// Maximality: included events = all events minus contaminated.
			if got := line.Size() + len(Contaminated(stamps, bad)); got != tr.Len() {
				t.Fatalf("trial %d bad %d: %d included + contaminated != %d",
					trial, bad, got, tr.Len())
			}
		}
	}
}
