// Package clock defines the interface every timestamping scheme in this
// repository implements, the engine that drives a scheme over a computation,
// and the validity checker that tests a scheme against the ground-truth
// happened-before oracle.
//
// A scheme is a valid vector clock when, for all events s and t of the
// computation, s → t ⇔ s.V < t.V (Theorem 2 of the paper). The checker
// additionally verifies that distinct events receive distinct timestamps,
// which the paper's Lemma 2 implies for every covering scheme.
package clock

import (
	"fmt"

	"mixedclock/internal/event"
	"mixedclock/internal/hb"
	"mixedclock/internal/vclock"
)

// Timestamper assigns vector timestamps to the events of one computation.
// Implementations are stateful: events must be fed in trace order, exactly
// once each. Implementations are not safe for concurrent use; the live
// runtime in package track adds its own locking.
type Timestamper interface {
	// Timestamp processes the next event and returns its timestamp. The
	// returned vector must not be mutated afterwards by the implementation
	// (implementations clone as needed).
	Timestamp(e event.Event) vclock.Vector
	// Components returns the number of vector components currently in use.
	// For online schemes this grows as the computation reveals new
	// threads and objects.
	Components() int
	// Name identifies the scheme in reports, e.g. "mixed/offline".
	Name() string
}

// Run drives ts over the whole trace and returns one timestamp per event,
// indexed by event index.
func Run(tr *event.Trace, ts Timestamper) []vclock.Vector {
	out := make([]vclock.Vector, tr.Len())
	for i := 0; i < tr.Len(); i++ {
		out[i] = ts.Timestamp(tr.At(i))
	}
	return out
}

// ValidationError describes the first pair of events for which a scheme's
// timestamps disagree with the happened-before oracle.
type ValidationError struct {
	Scheme string
	I, J   int
	EventI event.Event
	EventJ event.Event
	StampI vclock.Vector
	StampJ vclock.Vector
	// Want describes the oracle relation; Got the timestamp relation.
	Want string
	Got  vclock.Ordering
}

// Error implements the error interface.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("clock %s: events %d %v and %d %v: oracle says %s but timestamps %v vs %v compare %v",
		e.Scheme, e.I, e.EventI, e.J, e.EventJ, e.Want, e.StampI, e.StampJ, e.Got)
}

// Validate checks Theorem 2 exhaustively: for every ordered pair of events,
// the timestamp comparison must coincide with the oracle's happened-before
// verdict, and no two distinct events may share a timestamp. It returns nil
// when stamps form a valid vector clock for tr, or a *ValidationError
// describing the first disagreement.
//
// Cost is O(E² · k) where k is the vector width — use on test-sized traces.
func Validate(tr *event.Trace, stamps []vclock.Vector, scheme string) error {
	if len(stamps) != tr.Len() {
		return fmt.Errorf("clock %s: %d stamps for %d events", scheme, len(stamps), tr.Len())
	}
	oracle := hb.New(tr)
	for i := 0; i < tr.Len(); i++ {
		for j := i + 1; j < tr.Len(); j++ {
			// The trace order is a linearization, so j → i is impossible;
			// the oracle relation is either i → j or i ‖ j.
			want := vclock.Concurrent
			wantName := "concurrent"
			if oracle.HappenedBefore(i, j) {
				want = vclock.Before
				wantName = "happened-before"
			}
			if got := stamps[i].Compare(stamps[j]); got != want {
				return &ValidationError{
					Scheme: scheme,
					I:      i, J: j,
					EventI: tr.At(i), EventJ: tr.At(j),
					StampI: stamps[i], StampJ: stamps[j],
					Want: wantName, Got: got,
				}
			}
		}
	}
	return nil
}

// RunAndValidate is the one-call form of Run followed by Validate.
func RunAndValidate(tr *event.Trace, ts Timestamper) ([]vclock.Vector, error) {
	stamps := Run(tr, ts)
	if err := Validate(tr, stamps, ts.Name()); err != nil {
		return stamps, err
	}
	return stamps, nil
}

// Equivalent checks that two stamp sequences for the same computation induce
// the same ordering verdict on every event pair — the contract between clock
// backends: representations may differ, happened-before may not. It returns
// nil when the sequences agree, or an error naming the first divergent pair.
//
// Cost is O(E² · k); use on test-sized traces.
func Equivalent(a, b []vclock.Vector, schemeA, schemeB string) error {
	if len(a) != len(b) {
		return fmt.Errorf("clock: %s has %d stamps, %s has %d", schemeA, len(a), schemeB, len(b))
	}
	for i := range a {
		for j := i + 1; j < len(a); j++ {
			ra, rb := a[i].Compare(a[j]), b[i].Compare(b[j])
			if ra != rb {
				return fmt.Errorf("clock: events %d vs %d: %s orders them %v (%v, %v) but %s orders them %v (%v, %v)",
					i, j, schemeA, ra, a[i], a[j], schemeB, rb, b[i], b[j])
			}
		}
	}
	return nil
}
