package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"sync"
)

// Op names one filesystem operation class for fault matching and crash-point
// counting.
type Op uint8

// The operation classes Faulty can match on. OpRead, OpOpen, OpReadDir and
// OpStat are read-side and never advance the durable-op counter; everything
// else mutates the directory's durable state.
const (
	OpCreate Op = iota
	OpCreateTemp
	OpOpen
	OpRename
	OpRemove
	OpReadDir
	OpMkdir
	OpSyncDir
	OpStat
	OpRead
	OpWrite
	OpFileSync
	OpClose
	opMax
)

var opNames = [...]string{
	OpCreate: "create", OpCreateTemp: "create-temp", OpOpen: "open",
	OpRename: "rename", OpRemove: "remove", OpReadDir: "readdir",
	OpMkdir: "mkdir", OpSyncDir: "sync-dir", OpStat: "stat",
	OpRead: "read", OpWrite: "write", OpFileSync: "fsync", OpClose: "close",
}

// String names the operation class.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OpSet is a bitmask of operation classes.
type OpSet uint16

// Ops builds an OpSet from the given operations.
func Ops(ops ...Op) OpSet {
	var s OpSet
	for _, o := range ops {
		s |= 1 << o
	}
	return s
}

// Has reports whether the set contains op.
func (s OpSet) Has(op Op) bool { return s&(1<<op) != 0 }

// AllOps matches every operation class.
const AllOps = OpSet(1<<opMax) - 1

// MutatingOps matches every operation that changes durable state — the ops
// the crash-point counter counts. (Close of a written file is counted too,
// but is matched via OpClose.)
var MutatingOps = Ops(OpCreate, OpCreateTemp, OpRename, OpRemove, OpMkdir, OpSyncDir, OpWrite, OpFileSync, OpClose)

// ErrCrashed is the error every operation returns after a Faulty filesystem
// reached its crash point: the directory is frozen exactly as a power cut at
// that durable-op index would have left it.
var ErrCrashed = errors.New("vfs: filesystem crashed (frozen at crash point)")

// ErrInjected is the default injected error for rules that do not name one.
var ErrInjected = errors.New("vfs: injected fault")

// Rule is one deterministic fault: among operations matching Ops (and, when
// PathContains is non-empty, whose path contains it), occurrences Nth
// through Nth+Count-1 fail with Err. Count <= 0 means every occurrence from
// Nth on — a persistent fault until Heal. TornFrac, for OpWrite rules,
// writes that fraction of the buffer through to the base filesystem before
// failing, leaving a genuinely torn file.
type Rule struct {
	// Ops selects the operation classes the rule applies to.
	Ops OpSet
	// PathContains, when non-empty, restricts the rule to paths containing
	// this substring.
	PathContains string
	// Nth is the first matching occurrence that fails (0-based).
	Nth int64
	// Count bounds how many occurrences fail; <= 0 means unbounded.
	Count int64
	// Err is the injected error (ErrInjected when nil). Wrapped, so
	// errors.Is sees the original (e.g. syscall.ENOSPC).
	Err error
	// TornFrac applies to OpWrite: the fraction of the buffer written
	// through before the failure (0 tears at the very start).
	TornFrac float64

	matched int64
}

// fate is the decided outcome of one intercepted operation.
type fate struct {
	err  error
	torn float64 // meaningful for writes when err != nil and rule-injected
	tear bool
}

// Faulty wraps a base FS with a deterministic fault injector. Zero overhead
// is not a goal (OS is the production path); determinism is: the same
// operation sequence meets the same fates, which is what makes an
// exhaustive crash-point sweep possible.
type Faulty struct {
	base FS

	mu      sync.Mutex
	rules   []*Rule
	ops     int64 // durable (mutating) operations seen so far
	crashAt int64 // durable-op index the crash freezes at; -1 never
	crashed bool
}

// NewFaulty wraps base with an injector that (until scripted) injects
// nothing.
func NewFaulty(base FS) *Faulty {
	return &Faulty{base: base, crashAt: -1}
}

// Script replaces the fault schedule. Rules are evaluated in order; the
// first match decides the operation's fate.
func (f *Faulty) Script(rules ...Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = make([]*Rule, len(rules))
	for i := range rules {
		r := rules[i]
		f.rules[i] = &r
	}
}

// Heal drops every scripted rule — the disk works again. A crash point is
// not healed; a crashed filesystem stays frozen.
func (f *Faulty) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// CrashAt freezes the filesystem at durable-op index k (0-based): the k-th
// mutating operation and everything after it — reads included — fail with
// ErrCrashed and change nothing, leaving the directory exactly as a crash
// between op k-1 and op k would. k < 0 disables the crash point.
func (f *Faulty) CrashAt(k int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = k
	f.crashed = false
}

// Crashed reports whether the crash point has been reached.
func (f *Faulty) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Ops returns how many durable (mutating) operations the filesystem has
// seen — the op-index space CrashAt freezes in. Faulted operations count
// too: the index of an op does not depend on the fates of the ops before it.
func (f *Faulty) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// decide advances the counters and picks the operation's fate. mutating
// marks ops that change durable state (for OpClose the caller knows whether
// the file was writable).
func (f *Faulty) decide(op Op, path string, mutating bool) fate {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return fate{err: fmt.Errorf("vfs: %s %s: %w", op, path, ErrCrashed)}
	}
	if mutating {
		n := f.ops
		f.ops++
		if f.crashAt >= 0 && n >= f.crashAt {
			f.crashed = true
			return fate{err: fmt.Errorf("vfs: %s %s: %w", op, path, ErrCrashed)}
		}
	}
	for _, r := range f.rules {
		if !r.Ops.Has(op) {
			continue
		}
		if r.PathContains != "" && !contains(path, r.PathContains) {
			continue
		}
		m := r.matched
		r.matched++
		if m < r.Nth || (r.Count > 0 && m >= r.Nth+r.Count) {
			continue
		}
		err := r.Err
		if err == nil {
			err = ErrInjected
		}
		return fate{
			err:  fmt.Errorf("vfs: injected fault on %s %s: %w", op, path, err),
			torn: r.TornFrac,
			tear: op == OpWrite,
		}
	}
	return fate{}
}

// contains is strings.Contains without the import.
func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// Create implements FS.
func (f *Faulty) Create(name string) (File, error) {
	if ft := f.decide(OpCreate, name, true); ft.err != nil {
		return nil, ft.err
	}
	file, err := f.base.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, base: file, path: name, writable: true}, nil
}

// CreateTemp implements FS.
func (f *Faulty) CreateTemp(dir, pattern string) (File, error) {
	if ft := f.decide(OpCreateTemp, dir+"/"+pattern, true); ft.err != nil {
		return nil, ft.err
	}
	file, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, base: file, path: file.Name(), writable: true}, nil
}

// Open implements FS.
func (f *Faulty) Open(name string) (File, error) {
	if ft := f.decide(OpOpen, name, false); ft.err != nil {
		return nil, ft.err
	}
	file, err := f.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{f: f, base: file, path: name}, nil
}

// Rename implements FS.
func (f *Faulty) Rename(oldpath, newpath string) error {
	if ft := f.decide(OpRename, newpath, true); ft.err != nil {
		return ft.err
	}
	return f.base.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *Faulty) Remove(name string) error {
	if ft := f.decide(OpRemove, name, true); ft.err != nil {
		return ft.err
	}
	return f.base.Remove(name)
}

// ReadDir implements FS.
func (f *Faulty) ReadDir(name string) ([]fs.DirEntry, error) {
	if ft := f.decide(OpReadDir, name, false); ft.err != nil {
		return nil, ft.err
	}
	return f.base.ReadDir(name)
}

// MkdirAll implements FS.
func (f *Faulty) MkdirAll(name string) error {
	if ft := f.decide(OpMkdir, name, true); ft.err != nil {
		return ft.err
	}
	return f.base.MkdirAll(name)
}

// SyncDir implements FS.
func (f *Faulty) SyncDir(name string) error {
	if ft := f.decide(OpSyncDir, name, true); ft.err != nil {
		return ft.err
	}
	return f.base.SyncDir(name)
}

// Stat implements FS.
func (f *Faulty) Stat(name string) (fs.FileInfo, error) {
	if ft := f.decide(OpStat, name, false); ft.err != nil {
		return nil, ft.err
	}
	return f.base.Stat(name)
}

// faultyFile threads per-file operations back through the injector.
type faultyFile struct {
	f        *Faulty
	base     File
	path     string
	writable bool
}

func (ff *faultyFile) Name() string { return ff.base.Name() }

func (ff *faultyFile) Read(p []byte) (int, error) {
	if ft := ff.f.decide(OpRead, ff.path, false); ft.err != nil {
		return 0, ft.err
	}
	return ff.base.Read(p)
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	ft := ff.f.decide(OpWrite, ff.path, true)
	if ft.err == nil {
		return ff.base.Write(p)
	}
	if ft.tear {
		// A torn write: part of the buffer really lands before the failure,
		// like a page-sized write split by a power cut.
		n := int(float64(len(p)) * ft.torn)
		if n > len(p) {
			n = len(p)
		}
		if n > 0 {
			if wrote, werr := ff.base.Write(p[:n]); werr != nil {
				return wrote, ft.err
			}
			return n, ft.err
		}
	}
	return 0, ft.err
}

func (ff *faultyFile) Sync() error {
	if ft := ff.f.decide(OpFileSync, ff.path, true); ft.err != nil {
		return ft.err
	}
	return ff.base.Sync()
}

func (ff *faultyFile) Close() error {
	if ft := ff.f.decide(OpClose, ff.path, ff.writable); ft.err != nil {
		ff.base.Close() // release the descriptor regardless
		return ft.err
	}
	return ff.base.Close()
}
