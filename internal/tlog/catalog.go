package tlog

import (
	"encoding/json"
	"fmt"
	"io"

	"mixedclock/internal/vclock"
)

// Segment catalog: the stable, read-only view of a tracker's sealed history
// that external log shippers poll. The tracker publishes one catalog
// document (catalog.json in the spill directory, rewritten atomically after
// every seal and compaction); a shipper that re-reads it sees a consistent
// generation — which segments exist, where each one's file lives, which
// index range and epoch it covers, its size and its content hash — without
// ever touching the tracker itself. Segment files are immutable once listed,
// so a shipper may copy any listed file at leisure and verify the copy
// against SHA256; compaction retires files only after the catalog generation
// that stops listing them is in place.
//
// The document is plain JSON so shippers need no Go in the loop; Decode
// validates structure on the way in, making the catalog safe to consume
// from untrusted or half-written files.

// CatalogFormatVersion is the catalog document version this package writes
// and accepts.
const CatalogFormatVersion = 1

// CatalogFileName is the catalog's file name inside a spill directory —
// shared by the tracker that publishes it and the tools that read it.
const CatalogFileName = "catalog.json"

// CatalogPrevFileName is the previous catalog generation, kept beside
// catalog.json by the publisher. catalog.json itself is replaced by atomic
// rename, but a power cut can still leave it torn on some filesystems;
// recovery falls back to this copy, losing at most one generation of
// listing (never any segment data — segment files are immutable).
const CatalogPrevFileName = CatalogFileName + ".prev"

// QuarantineSuffix is appended to a damaged file's name when recovery sets
// it aside instead of deleting it: a torn segment tail, an orphan spill file
// a crash left unlisted, or an unreadable catalog. Quarantined files are
// ignored by every reader (they no longer match *.mvcseg or catalog.json)
// but stay on disk for inspection.
const QuarantineSuffix = ".quarantined"

// CatalogSegment describes one sealed segment.
type CatalogSegment struct {
	// Epoch the segment's records belong to (a segment never spans one).
	Epoch int `json:"epoch"`
	// FirstIndex is the global trace index of the segment's first record;
	// Events is how many records it holds.
	FirstIndex int `json:"first_index"`
	Events     int `json:"events"`
	// Bytes is the encoded container size.
	Bytes int64 `json:"bytes"`
	// Path is the segment's spill file, relative to the catalog's own
	// directory; empty for a segment still held in memory.
	Path string `json:"path,omitempty"`
	// SHA256 is the hex content hash of the encoded container, when known —
	// what a shipper verifies its copy against.
	SHA256 string `json:"sha256,omitempty"`
	// SealedUnix is when the segment was sealed (Unix seconds), zero when
	// unknown. Retention's MaxAge clock; survives a reopen.
	SealedUnix int64 `json:"sealed_unix,omitempty"`
}

// ResumeComponent is one mixed-clock component in a resume manifest: the
// component at vector index i is Components[i] of the manifest. Kind is
// "thread" or "object"; ID is the dense thread or object identifier.
type ResumeComponent struct {
	Kind string `json:"kind"`
	ID   int    `json:"id"`
}

// Resume component kinds.
const (
	ResumeThread = "thread"
	ResumeObject = "object"
)

// CatalogResume is the manifest a tracker needs to resume a run from its
// sealed history alone: the epoch counter, where each epoch began, the
// requested clock representation, the registered thread and object names
// (dense IDs are positions), the ordered component set (positions are
// vector indices — components are append-only within an epoch, so the
// manifest set is always a suffix-superset of any sealed record's width),
// and the revealed thread–object edges. Everything else a live tracker
// holds — per-thread and per-object clocks — is reconstructed by replaying
// the current epoch's segments, whose stamps ARE those clocks.
type CatalogResume struct {
	// Epoch is the current epoch (compactions so far).
	Epoch int `json:"epoch"`
	// EpochStarts[i] is the trace index where epoch i+1 began; exactly
	// Epoch entries.
	EpochStarts []int `json:"epoch_starts,omitempty"`
	// Backend is the *requested* clock representation ("flat", "tree" or
	// "auto" — auto stays a policy across restarts, never a pinned choice).
	Backend string `json:"backend,omitempty"`
	// Threads and Objects are the registered names; index is the dense ID.
	Threads []string `json:"threads,omitempty"`
	Objects []string `json:"objects,omitempty"`
	// Components is the ordered component set of the current epoch.
	Components []ResumeComponent `json:"components,omitempty"`
	// Edges lists the revealed thread–object edges as [thread, object]
	// ID pairs.
	Edges [][2]int `json:"edges,omitempty"`
}

// validate checks a resume manifest against the catalog's sealed-event
// count. Every ID is bounds-checked against the name tables, so a hostile
// document cannot make a recovering tracker allocate beyond its own size.
func (r *CatalogResume) validate(sealedEvents int) error {
	if r.Epoch < 0 {
		return fmt.Errorf("tlog: catalog resume epoch %d", r.Epoch)
	}
	if len(r.EpochStarts) != r.Epoch {
		return fmt.Errorf("tlog: catalog resume has %d epoch starts for epoch %d", len(r.EpochStarts), r.Epoch)
	}
	prev := 0
	for i, s := range r.EpochStarts {
		if s < prev || s > sealedEvents {
			return fmt.Errorf("tlog: catalog resume epoch start %d = %d (prev %d, sealed %d)",
				i, s, prev, sealedEvents)
		}
		prev = s
	}
	if r.Backend != "" {
		if _, err := vclock.ParseBackend(r.Backend); err != nil {
			return fmt.Errorf("tlog: catalog resume: %w", err)
		}
	}
	seen := make(map[ResumeComponent]bool, len(r.Components))
	for i, c := range r.Components {
		var n int
		switch c.Kind {
		case ResumeThread:
			n = len(r.Threads)
		case ResumeObject:
			n = len(r.Objects)
		default:
			return fmt.Errorf("tlog: catalog resume component %d has kind %q", i, c.Kind)
		}
		if c.ID < 0 || c.ID >= n {
			return fmt.Errorf("tlog: catalog resume component %d (%s %d) out of range [0,%d)", i, c.Kind, c.ID, n)
		}
		if seen[c] {
			return fmt.Errorf("tlog: catalog resume component %d (%s %d) duplicated", i, c.Kind, c.ID)
		}
		seen[c] = true
	}
	for i, e := range r.Edges {
		if e[0] < 0 || e[0] >= len(r.Threads) || e[1] < 0 || e[1] >= len(r.Objects) {
			return fmt.Errorf("tlog: catalog resume edge %d = (%d,%d) out of range (%d threads, %d objects)",
				i, e[0], e[1], len(r.Threads), len(r.Objects))
		}
	}
	return nil
}

// Catalog is the JSON-serializable segment catalog.
type Catalog struct {
	// FormatVersion is CatalogFormatVersion.
	FormatVersion int `json:"format_version"`
	// Generation increases on every publication; a shipper that reads the
	// same generation twice saw the same segment list.
	Generation int64 `json:"generation"`
	// SealedEvents is how many records sealed history covers: segments span
	// global indices [0, SealedEvents) with no gaps (barring lost files).
	SealedEvents int `json:"sealed_events"`
	// Health is empty while the tracker is healthy; otherwise the text of
	// its first error (clock misuse or segment I/O — see Tracker.Err).
	Health string `json:"health,omitempty"`
	// AutoSealDisarmed reports that automatic sealing hit a spill I/O
	// failure and stopped; history accumulates in memory until the
	// tracker's periodic disk probe, an explicit Seal, or a Compact
	// succeeds and re-arms it.
	AutoSealDisarmed bool `json:"auto_seal_disarmed,omitempty"`
	// DegradedSinceUnix is when (Unix seconds) a persistent spill failure
	// flipped the publishing tracker into degraded mode — tracking
	// continues fully in memory, nothing new reaches disk. Zero while
	// healthy; cleared by the first successful seal after the disk
	// recovers.
	DegradedSinceUnix int64 `json:"degraded_since_unix,omitempty"`
	// RetainedEvents is the retention floor: events below it were retired
	// (deleted or archived) by a RetainPolicy pass, so segments cover
	// [RetainedEvents, SealedEvents) instead of starting at zero. Retired
	// segments always belong to closed epochs, so replay of the current
	// epoch — what recovery needs — is never affected.
	RetainedEvents int `json:"retained_events,omitempty"`
	// Closed reports a clean shutdown: Tracker.Close sealed the tail and
	// published this generation as its last act. A catalog without it was
	// left by a crash (or a still-running tracker).
	Closed bool `json:"closed,omitempty"`
	// Segments lists sealed history, oldest first.
	Segments []CatalogSegment `json:"segments"`
	// Resume, when present, is the manifest track.Open needs to rebuild a
	// live tracker from this directory; see CatalogResume.
	Resume *CatalogResume `json:"resume,omitempty"`
}

// Validate checks the catalog's internal consistency: known version, sane
// counts, segments ordered and gapless from the retention floor, hashes
// well-formed, and the resume manifest (if any) in bounds.
func (c *Catalog) Validate() error {
	if c.FormatVersion != CatalogFormatVersion {
		return fmt.Errorf("tlog: catalog format version %d (want %d)", c.FormatVersion, CatalogFormatVersion)
	}
	if c.Generation < 0 || c.SealedEvents < 0 {
		return fmt.Errorf("tlog: negative catalog counters (generation %d, sealed %d)", c.Generation, c.SealedEvents)
	}
	if c.RetainedEvents < 0 || c.RetainedEvents > c.SealedEvents {
		return fmt.Errorf("tlog: catalog retention floor %d outside [0,%d]", c.RetainedEvents, c.SealedEvents)
	}
	if c.DegradedSinceUnix < 0 {
		return fmt.Errorf("tlog: catalog degraded_since_unix %d is negative", c.DegradedSinceUnix)
	}
	next, epoch := c.RetainedEvents, 0
	for i, sg := range c.Segments {
		if sg.Epoch < 0 || sg.FirstIndex < 0 || sg.Events <= 0 || sg.Bytes < 0 || sg.SealedUnix < 0 {
			return fmt.Errorf("tlog: catalog segment %d has impossible fields %+v", i, sg)
		}
		if sg.FirstIndex != next {
			return fmt.Errorf("tlog: catalog segment %d starts at %d, want %d (gapless from the retention floor)",
				i, sg.FirstIndex, next)
		}
		if sg.Epoch < epoch {
			return fmt.Errorf("tlog: catalog segment %d regresses to epoch %d after %d", i, sg.Epoch, epoch)
		}
		if sg.SHA256 != "" {
			if len(sg.SHA256) != 64 {
				return fmt.Errorf("tlog: catalog segment %d hash %q is not 64 hex digits", i, sg.SHA256)
			}
			for _, r := range sg.SHA256 {
				if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
					return fmt.Errorf("tlog: catalog segment %d hash %q is not lowercase hex", i, sg.SHA256)
				}
			}
		}
		next = sg.FirstIndex + sg.Events
		epoch = sg.Epoch
	}
	if next != c.SealedEvents {
		return fmt.Errorf("tlog: catalog lists %d sealed events, segments cover %d", c.SealedEvents, next)
	}
	if c.Resume != nil {
		if err := c.Resume.validate(c.SealedEvents); err != nil {
			return err
		}
	}
	return nil
}

// EncodeCatalog writes the catalog as indented JSON. The catalog is
// validated first, so a half-built document never reaches shippers.
func EncodeCatalog(w io.Writer, c *Catalog) error {
	if err := c.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(c); err != nil {
		return fmt.Errorf("tlog: encoding catalog: %w", err)
	}
	return nil
}

// DecodeCatalog reads and validates one catalog document.
func DecodeCatalog(r io.Reader) (*Catalog, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c Catalog
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("tlog: decoding catalog: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}
