// Package tlog implements a compact binary log of timestamped events — the
// persistence format for computations whose timestamps should survive the
// process (post-mortem debugging, recovery lines after a crash).
//
// Two wire formats share the record framing and truncation semantics, and
// Reader auto-detects which one a stream carries:
//
//   - Full (magic "MVCLOG01", Writer/WriteAll): one record per event,
//     uvarint thread | object | op | canonical vector, where the vector is
//     a uvarint component count followed by uvarint components (trailing
//     zeros trimmed, as in vclock's codec).
//   - Delta (magic "MVCLOG02", DeltaWriter/WriteAllDelta): records carry
//     only the (index, value) pairs that changed against the same thread's
//     previous record, with full-vector sync points every SyncEvery records
//     per thread; see delta.go. On wide clocks with causal locality the
//     stream shrinks by roughly width ÷ changes-per-event.
//
// Records are self-delimiting in both formats, so a log truncated by a
// crash is readable up to the last complete record; ReadAll returns the
// readable prefix together with ErrTruncated, which is exactly what failure
// recovery wants.
package tlog

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// magic identifies the format and its version.
var magic = [8]byte{'M', 'V', 'C', 'L', 'O', 'G', '0', '1'}

// Errors returned by readers.
var (
	// ErrBadMagic means the input is not a tlog stream.
	ErrBadMagic = errors.New("tlog: bad magic header")
	// ErrTruncated means the stream ended mid-record; data read up to the
	// previous record is valid.
	ErrTruncated = errors.New("tlog: truncated record")
	// ErrCorrupt means a record carries an out-of-bounds field (e.g. an
	// absurd thread ID or component count); data read up to the previous
	// record is valid.
	ErrCorrupt = errors.New("tlog: corrupt record")
)

// Field bounds: IDs and vector widths beyond these indicate corruption, not
// a legitimately huge system, and guard the reader against allocating
// attacker-controlled amounts of memory.
const (
	maxID         = 1<<31 - 1
	maxOp         = 1 << 16
	maxComponents = 1 << 24
)

// Delta-format width budget: a delta pair names an absolute component
// index, so unlike the full format a few-byte record could demand a huge
// reconstruction up front. The reader only accepts indices below
// deltaBudgetBase + deltaBudgetFactor × (bytes read so far), which keeps
// reconstruction memory proportional to input size; the writer checks the
// same inequality against bytes written and falls back to a full record —
// which pays for its width in stream bytes, replenishing the budget — when
// a pair would exceed it.
const (
	deltaBudgetBase   = 1 << 12
	deltaBudgetFactor = 8
)

// deltaBudget is the largest component index a delta pair may name after n
// stream bytes.
func deltaBudget(n int64) uint64 {
	return uint64(deltaBudgetBase + deltaBudgetFactor*n)
}

// Writer appends timestamped events to a stream. Call Flush before closing
// the underlying writer.
type Writer struct {
	w       *bufio.Writer
	started bool
	buf     []byte
}

// NewWriter returns a Writer on w. The magic header is written lazily on
// the first Append, so an abandoned Writer leaves no bytes behind.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Append writes one record.
func (w *Writer) Append(e event.Event, v vclock.Vector) error {
	if e.Thread < 0 || e.Object < 0 || e.Op < 0 {
		return fmt.Errorf("tlog: negative field in event %v", e)
	}
	if !w.started {
		if _, err := w.w.Write(magic[:]); err != nil {
			return fmt.Errorf("tlog: writing header: %w", err)
		}
		w.started = true
	}
	w.buf = w.buf[:0]
	w.buf = binary.AppendUvarint(w.buf, uint64(e.Thread))
	w.buf = binary.AppendUvarint(w.buf, uint64(e.Object))
	w.buf = binary.AppendUvarint(w.buf, uint64(e.Op))
	w.buf = v.AppendBinary(w.buf)
	if _, err := w.w.Write(w.buf); err != nil {
		return fmt.Errorf("tlog: writing record: %w", err)
	}
	return nil
}

// Flush pushes buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("tlog: flushing: %w", err)
	}
	return nil
}

// Reader iterates a tlog stream in either format: the magic header decides
// whether records carry full vectors (version 01) or per-thread deltas with
// sync-point fallbacks (version 02), and Next reconstructs full vectors
// transparently either way.
type Reader struct {
	r     *bufio.Reader
	index int
	// delta is set for version-02 streams; prev then holds the running
	// per-thread reconstruction state, and count meters the raw input so
	// reconstruction width stays proportional to bytes actually read (the
	// delta-format analogue of fullVector's incremental growth guard).
	delta bool
	prev  map[event.ThreadID]vclock.Vector
	count *countingReader
	// scratch is the retained decode buffer NextShared reconstructs full
	// vectors into, so steady-state shared reads allocate nothing.
	scratch vclock.Vector
}

// countingReader meters bytes pulled from the underlying stream (bufio
// read-ahead included, which only ever makes the budget more generous by a
// bounded constant).
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// NewReader validates the magic header and returns a Reader. An empty
// stream (no header at all) yields a Reader that immediately reports
// io.EOF, matching the lazy-header Writers.
func NewReader(r io.Reader) (*Reader, error) {
	cr := &countingReader{r: r}
	br := bufio.NewReader(cr)
	head, err := br.Peek(len(magic))
	if err == io.EOF && len(head) == 0 {
		return &Reader{r: br, count: cr}, nil
	}
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("tlog: reading header: %w", err)
	}
	lr := &Reader{r: br, count: cr}
	switch {
	case bytes.Equal(head, magic[:]):
	case bytes.Equal(head, magicDelta[:]):
		lr.delta = true
		lr.prev = make(map[event.ThreadID]vclock.Vector)
	default:
		return nil, ErrBadMagic
	}
	if _, err := br.Discard(len(magic)); err != nil {
		return nil, fmt.Errorf("tlog: discarding header: %w", err)
	}
	return lr, nil
}

// Next returns the next record. It reports io.EOF at a clean end of stream
// and ErrTruncated when the stream stops mid-record. The returned vector is
// an independent copy.
func (r *Reader) Next() (event.Event, vclock.Vector, error) {
	return r.next(false)
}

// NextShared is Next without the defensive copies: the returned vector
// aliases the reader's internal reconstruction state and is valid only until
// the next call (in either form). Steady-state shared reads allocate nothing
// beyond the per-thread state the format requires, which is what lets bulk
// consumers — the live tracker's segment streaming, log rewriters — iterate
// a stream with allocation cost independent of its length.
func (r *Reader) NextShared() (event.Event, vclock.Vector, error) {
	return r.next(true)
}

func (r *Reader) next(shared bool) (event.Event, vclock.Vector, error) {
	t, err := binary.ReadUvarint(r.r)
	if err == io.EOF {
		return event.Event{}, nil, io.EOF // clean boundary
	}
	if err != nil {
		return event.Event{}, nil, fmt.Errorf("%w: thread field: %v", ErrTruncated, err)
	}
	if t > maxID {
		return event.Event{}, nil, fmt.Errorf("%w: thread ID %d", ErrCorrupt, t)
	}
	o, err := r.field("object")
	if err != nil {
		return event.Event{}, nil, err
	}
	if o > maxID {
		return event.Event{}, nil, fmt.Errorf("%w: object ID %d", ErrCorrupt, o)
	}
	op, err := r.field("op")
	if err != nil {
		return event.Event{}, nil, err
	}
	if op > maxOp {
		return event.Event{}, nil, fmt.Errorf("%w: op %d", ErrCorrupt, op)
	}
	var v vclock.Vector
	if r.delta {
		v, err = r.deltaPayload(event.ThreadID(t), shared)
	} else {
		v, err = r.fullVector(shared)
	}
	if err != nil {
		return event.Event{}, nil, err
	}
	e := event.Event{
		Index:  r.index,
		Thread: event.ThreadID(t),
		Object: event.ObjectID(o),
		Op:     event.Op(op),
	}
	r.index++
	return e, v, nil
}

// fullVector decodes a canonical vector payload (format 01, and format 02
// sync records). In shared mode the result lives in the reader's retained
// scratch buffer.
func (r *Reader) fullVector(shared bool) (vclock.Vector, error) {
	n, err := r.field("component count")
	if err != nil {
		return nil, err
	}
	if n > maxComponents {
		return nil, fmt.Errorf("%w: component count %d", ErrCorrupt, n)
	}
	// Grow incrementally: each component consumes at least one input byte,
	// so a lying count cannot force a large allocation up front.
	var v vclock.Vector
	if shared {
		v = r.scratch[:0]
	} else {
		v = make(vclock.Vector, 0, min(n, 64))
	}
	for i := uint64(0); i < n; i++ {
		x, err := r.field("component")
		if err != nil {
			return nil, err
		}
		v = append(v, x)
	}
	if shared {
		r.scratch = v
	}
	return v, nil
}

// deltaPayload decodes a format-02 payload for thread t, reconstructing the
// full vector from the thread's running state. In shared mode the result
// aliases that state instead of being cloned out of it.
func (r *Reader) deltaPayload(t event.ThreadID, shared bool) (vclock.Vector, error) {
	tag, err := r.field("tag")
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagFull:
		v, err := r.fullVector(shared)
		if err != nil {
			return nil, err
		}
		if !shared {
			r.prev[t] = v.Clone()
			return v, nil
		}
		// Absorb the sync vector into the retained per-thread state in
		// place (zeroing any components beyond the canonical encoding's
		// trimmed tail) and hand the caller the state itself.
		p := r.prev[t].Grow(len(v))
		copy(p, v)
		for i := len(v); i < len(p); i++ {
			p[i] = 0
		}
		r.prev[t] = p
		return p, nil
	case tagDelta:
		// The writer emits a full vector as every thread's first record,
		// so a delta with no base to apply to is proof of corruption (or a
		// spliced stream) — reconstructing from zero would fabricate
		// timestamps without any error.
		v, seeded := r.prev[t]
		if !seeded {
			return nil, fmt.Errorf("%w: delta record for thread %d before any full record", ErrCorrupt, t)
		}
		n, err := r.field("pair count")
		if err != nil {
			return nil, err
		}
		if n > maxComponents {
			return nil, fmt.Errorf("%w: pair count %d", ErrCorrupt, n)
		}
		// Apply in place on the running state (nothing else aliases it;
		// full records store a private clone) and hand the caller a copy.
		for i := uint64(0); i < n; i++ {
			idx, err := r.field("pair index")
			if err != nil {
				return nil, err
			}
			// Full records cap the width at maxComponents, so the largest
			// legal index is maxComponents-1 — keep the formats' limits
			// consistent.
			if idx >= maxComponents {
				return nil, fmt.Errorf("%w: component index %d", ErrCorrupt, idx)
			}
			// Reconstruction memory must stay proportional to input size;
			// DeltaWriter maintains the same inequality against bytes
			// written (falling back to full records when needed), so
			// anything it produced passes, while a hostile few-byte
			// record asking for a 2²⁴-wide vector is refused.
			if idx >= deltaBudget(r.count.n) {
				return nil, fmt.Errorf("%w: component index %d exceeds stream budget", ErrCorrupt, idx)
			}
			x, err := r.field("pair value")
			if err != nil {
				return nil, err
			}
			v = v.Set(int(idx), x)
		}
		r.prev[t] = v
		if shared {
			return v, nil
		}
		return v.Clone(), nil
	default:
		return nil, fmt.Errorf("%w: record tag %d", ErrCorrupt, tag)
	}
}

func (r *Reader) field(name string) (uint64, error) {
	x, err := binary.ReadUvarint(r.r)
	if err != nil {
		return 0, fmt.Errorf("%w: %s field: %v", ErrTruncated, name, err)
	}
	return x, nil
}

// WriteAll writes a whole timestamped computation.
func WriteAll(w io.Writer, tr *event.Trace, stamps []vclock.Vector) error {
	if len(stamps) != tr.Len() {
		return fmt.Errorf("tlog: %d stamps for %d events", len(stamps), tr.Len())
	}
	lw := NewWriter(w)
	for i := 0; i < tr.Len(); i++ {
		if err := lw.Append(tr.At(i), stamps[i]); err != nil {
			return err
		}
	}
	return lw.Flush()
}

// ReadAll reads every complete record. On truncation it returns the
// readable prefix together with an error wrapping ErrTruncated, so crash
// recovery can proceed with what survived.
func ReadAll(r io.Reader) (*event.Trace, []vclock.Vector, error) {
	lr, err := NewReader(r)
	if err != nil {
		return nil, nil, err
	}
	tr := event.NewTrace()
	var stamps []vclock.Vector
	for {
		e, v, err := lr.Next()
		if err == io.EOF {
			return tr, stamps, nil
		}
		if err != nil {
			return tr, stamps, err
		}
		tr.Append(e.Thread, e.Object, e.Op)
		stamps = append(stamps, v)
	}
}
