package track

import (
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Sharded stop-the-world barrier. Every Do holds the read side of the world
// lock across its commit, so with a single RWMutex every commit on every
// core performs a read-modify-write on the same reader-count word — at high
// goroutine counts that one cache line, not the clock work, dominates the
// hot path. worldLock splits the reader count across cache-line-padded
// shards: each Thread is pinned to one shard (dense thread IDs round-robin
// across them) and its commits touch only that shard's line, while the
// write side — snapshots, Seal, Compact — acquires every shard in order,
// which still quiesces all in-flight commits exactly as before.
//
// The same cannot be done to the trace-index counter itself. A commit needs
// its dense index while it holds the object commit exclusion (that is what
// makes index order refine program order and object order, i.e. makes the
// merged trace a linearization of happened-before), and handing out the
// next integer of a single dense sequence to whichever commit comes anywhere
// next is a consensus — any split of the counter either breaks density or
// breaks the order-refinement invariant (per-thread blocks invert object
// order; per-object counters collide). What CAN be fixed is everything
// around the counter: it lives in a paddedInt64 so the unavoidable RMW at
// least owns its cache line instead of false-sharing with the read-mostly
// fields (cover pointer, backend) every commit also touches.

// cacheLineSize is the padding stride. 128 covers the common 64-byte line
// and the 128-byte spatial prefetcher pairs on recent x86 parts.
const cacheLineSize = 128

// paddedRWMutex is an RWMutex alone on its cache line(s).
type paddedRWMutex struct {
	sync.RWMutex
	_ [cacheLineSize - unsafe.Sizeof(sync.RWMutex{})%cacheLineSize]byte
}

// paddedInt64 is an atomic counter alone on its cache line(s): the leading
// pad keeps it clear of whatever precedes it in the enclosing struct, the
// trailing pad keeps whatever follows off its line.
type paddedInt64 struct {
	_ [cacheLineSize]byte
	v atomic.Int64
	_ [cacheLineSize - unsafe.Sizeof(atomic.Int64{})%cacheLineSize]byte
}

func (p *paddedInt64) Add(d int64) int64 { return p.v.Add(d) }
func (p *paddedInt64) Load() int64       { return p.v.Load() }
func (p *paddedInt64) Store(x int64)     { p.v.Store(x) }

// worldLock is the sharded barrier.
type worldLock struct {
	shards []paddedRWMutex
}

// newWorldLock sizes the shard set to the core count (one contended line
// per core is the point; beyond that, shards only cost the write side) with
// a small cap so Lock stays cheap on huge machines.
func newWorldLock() *worldLock {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 32 {
		n = 32
	}
	return &worldLock{shards: make([]paddedRWMutex, n)}
}

// shardFor pins a dense thread ID to a shard.
func (w *worldLock) shardFor(id int) int { return id % len(w.shards) }

// RLock locks shard s for reading — the per-commit side.
func (w *worldLock) RLock(s int) { w.shards[s].RLock() }

// RUnlock releases shard s.
func (w *worldLock) RUnlock(s int) { w.shards[s].RUnlock() }

// Lock acquires every shard in order: when it returns, no commit is in
// flight and none can start until Unlock. Readers on not-yet-acquired
// shards keep committing while earlier shards are being taken; each such
// commit completes entirely before Lock returns, so the barrier semantics
// match a single RWMutex's write lock.
func (w *worldLock) Lock() {
	for i := range w.shards {
		w.shards[i].Lock()
	}
}

// Unlock releases every shard in reverse order.
func (w *worldLock) Unlock() {
	for i := len(w.shards) - 1; i >= 0; i-- {
		w.shards[i].Unlock()
	}
}
