// Segment retention: the index-based pruning half of the durability story.
// Sealed segments accumulate forever without it; RetainSegments retires the
// oldest ones — deleting or archiving their files — once they age out or
// push the directory over a size budget, with the same generation-bumped
// publish-before-delete discipline compaction uses.
//
// Only *graduated* segments are eligible: segments whose epoch is closed
// (epoch < the tracker's current epoch). Recovery replays exactly the
// current epoch's segments to rebuild the live clocks, so a graduated
// segment is provably never load-bearing for a reopen — retirement can
// never strand a run. Retirement is also strictly a prefix: sealed history
// stays gapless above the published retention floor (Catalog.
// RetainedEvents), and everything that replays history — Stream, Snapshot,
// SnapshotTo, lazy stamps — starts at the floor.
package track

import (
	"fmt"
	"io"
	"path/filepath"
	"time"

	"mixedclock/internal/vfs"
)

// RetainPolicy bounds how much sealed history a tracker keeps. The zero
// policy retains everything.
type RetainPolicy struct {
	// MaxAge, when positive, retires a graduated segment once its seal
	// time (the newest contained event's seal, surviving reopen via the
	// catalog) is older than this.
	MaxAge time.Duration
	// MaxBytes, when positive, is the sealed-history size budget: while
	// the total exceeds it, graduated segments are retired oldest first.
	// The current epoch's segments never count as retirable, so the
	// budget can be exceeded until a Compact closes the epoch.
	MaxBytes int64
	// Archive, when non-empty, moves retired spill files into this
	// directory instead of deleting them (created on first use). In-memory
	// segments are always simply dropped.
	Archive string
}

// enabled reports whether the policy can ever retire anything.
func (p RetainPolicy) enabled() bool { return p.MaxAge > 0 || p.MaxBytes > 0 }

// WithRetention arms automatic retention: after every successful seal (and
// the compaction pass, if any), segments the policy marks as expired are
// retired. Sugar for WithStore with only the Retain field set.
func WithRetention(p RetainPolicy) Option {
	return func(o *options) { o.store.Retain = p }
}

// maybeRetainSegments runs the armed retention policy, reporting whether a
// pass retired anything (and thus already published the catalog).
func (t *Tracker) maybeRetainSegments() bool {
	p := t.retain
	if !p.enabled() {
		return false
	}
	n, err := t.RetainSegments(p)
	if err != nil {
		t.noteErr(fmt.Errorf("track: auto retention: %w", err))
		return false
	}
	return n > 0
}

// RetainSegments runs one retention pass under the given policy and reports
// how many segments it retired (zero when nothing qualified, or when a
// compaction or retention pass already holds the gate). Only graduated
// segments — closed epochs, never the current one — are eligible, and only
// as a gapless prefix of sealed history: replay above the new floor, and
// any future reopen, are unaffected. The swapped-out files are deleted (or
// moved to p.Archive) only after the catalog generation that stops listing
// them is published, mirroring compaction's ordering, and the deletion runs
// through the epoch-based reclaimer: a pinned reader delays it, a quiescent
// tracker performs it before RetainSegments returns. A failure deleting or
// archiving an individual file surfaces through Err, not the return value —
// the retention pass itself has already taken effect.
func (t *Tracker) RetainSegments(p RetainPolicy) (retired int, err error) {
	if t.closed.Load() {
		return 0, fmt.Errorf("track: RetainSegments on a closed Tracker")
	}
	if !p.enabled() {
		return 0, nil
	}
	// Retention shares the compaction gate: both rewrite the sealed-segment
	// prefix, and the gate is what guarantees the snapshot below can only
	// have grown — never been reshuffled — by swap time.
	if !t.compactGate.CompareAndSwap(false, true) {
		return 0, nil
	}
	defer t.compactGate.Store(false)

	// The epoch needs a shard read lock (it is written under the world
	// barrier); the segment list is a lock-free snapshot.
	t.world.RLock(0)
	epoch := t.epoch
	t.world.RUnlock(0)
	snap := t.hist.Load().segs

	var total int64
	for _, sg := range snap {
		total += sg.size
	}
	now := time.Now()
	k := 0
	for k < len(snap) && snap[k].meta.Epoch < epoch {
		aged := p.MaxAge > 0 && !snap[k].sealedAt.IsZero() && now.Sub(snap[k].sealedAt) > p.MaxAge
		over := p.MaxBytes > 0 && total > p.MaxBytes
		if !aged && !over {
			break
		}
		total -= snap[k].size
		k++
	}
	if k == 0 {
		return 0, nil
	}
	dropped := snap[:k]
	floor := dropped[k-1].meta.FirstIndex + dropped[k-1].meta.Count

	// Swap with no barrier: publish a new immutable snapshot. The gate is
	// ours, so the list can only have grown at the tail since the snapshot;
	// the dropped prefix is unchanged.
	t.swapHist(func(old *segState) *segState {
		return &segState{
			segs:     append([]*segment(nil), old.segs[k:]...),
			retained: floor,
			gen:      old.gen + 1,
		}
	})

	// Publish the generation that stops listing the retired files, then
	// retire them through the reclaimer: deletion (or archival) waits out
	// any pinned reader still holding the superseded list, and runs
	// immediately when the tracker is quiescent. A file-retirement failure
	// surfaces through Err — the pass itself already succeeded.
	t.publishCatalog()
	for _, sg := range dropped {
		if sg.file == "" {
			continue
		}
		old := sg
		t.reclaim.retire(func() {
			if p.Archive != "" {
				if aerr := archiveFile(t.fs, old.path(), p.Archive, old.file); aerr != nil {
					t.noteErr(fmt.Errorf("track: archiving %s: %w", old.file, aerr))
				}
			} else if rerr := t.fs.Remove(old.path()); rerr != nil {
				t.noteErr(fmt.Errorf("track: retiring %s: %w", old.file, rerr))
			}
		})
	}
	t.retainPasses.Add(1)
	t.retiredSegs.Add(int64(k))
	return k, nil
}

// archiveFile moves src into dir/name, falling back to copy-then-remove
// when the rename crosses filesystems.
func archiveFile(fsys vfs.FS, src, dir, name string) error {
	if err := fsys.MkdirAll(dir); err != nil {
		return err
	}
	dst := filepath.Join(dir, name)
	if err := fsys.Rename(src, dst); err == nil {
		return nil
	}
	in, err := fsys.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := fsys.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		fsys.Remove(dst)
		return err
	}
	if err := out.Close(); err != nil {
		fsys.Remove(dst)
		return err
	}
	return fsys.Remove(src)
}
