package vclock_test

import (
	"math/rand"
	"testing"

	"mixedclock/internal/vclock"
)

func TestVectorApply(t *testing.T) {
	v := vclock.Vector{1, 2}
	v = v.Apply([]vclock.Delta{{Index: 0, Value: 3}, {Index: 4, Value: 1}})
	if !v.Equal(vclock.Vector{3, 2, 0, 0, 1}) {
		t.Fatalf("Apply = %v", v)
	}
	// Later entries override earlier ones (join raise then tick).
	v = vclock.Vector(nil).Apply([]vclock.Delta{{Index: 1, Value: 5}, {Index: 1, Value: 6}})
	if !v.Equal(vclock.Vector{0, 6}) {
		t.Fatalf("last-wins Apply = %v", v)
	}
	if got := (vclock.Vector{7}).Apply(nil); !got.Equal(vclock.Vector{7}) {
		t.Fatalf("empty Apply = %v", got)
	}
}

func TestFlatTickDelta(t *testing.T) {
	f := vclock.NewFlat(0)
	var ds []vclock.Delta
	ds = f.TickDelta(2, ds)
	ds = f.TickDelta(2, ds)
	ds = f.TickDelta(0, ds)
	want := []vclock.Delta{{Index: 2, Value: 1}, {Index: 2, Value: 2}, {Index: 0, Value: 1}}
	if len(ds) != len(want) {
		t.Fatalf("deltas = %v", ds)
	}
	for i := range want {
		if ds[i] != want[i] {
			t.Fatalf("delta %d = %v, want %v", i, ds[i], want[i])
		}
	}
	if !f.Flatten().Equal(vclock.Vector{1, 0, 2}) {
		t.Fatalf("clock after ticks = %v", f.Flatten())
	}
}

func TestFlatJoinDeltaReportsOnlyRaises(t *testing.T) {
	a := vclock.FlatOf(vclock.Vector{3, 0, 1})
	b := vclock.FlatOf(vclock.Vector{1, 2, 1, 4})
	ds := a.JoinDelta(b, nil)
	if !a.Flatten().Equal(vclock.Vector{3, 2, 1, 4}) {
		t.Fatalf("join result = %v", a.Flatten())
	}
	want := []vclock.Delta{{Index: 1, Value: 2}, {Index: 3, Value: 4}}
	if len(ds) != len(want) {
		t.Fatalf("deltas = %v, want %v", ds, want)
	}
	for i := range want {
		if ds[i] != want[i] {
			t.Fatalf("delta %d = %v, want %v", i, ds[i], want[i])
		}
	}
	// A dominated join changes nothing and reports nothing.
	if ds := a.JoinDelta(b, ds[:0]); len(ds) != 0 {
		t.Fatalf("dominated join reported %v", ds)
	}
}

func TestFlatApplyMatchesCapture(t *testing.T) {
	a := vclock.FlatOf(vclock.Vector{2, 0, 5})
	b := vclock.FlatOf(vclock.Vector{1, 7, 5, 1})
	pre := a.Flatten()
	var ds []vclock.Delta
	ds = a.JoinDelta(b, ds)
	ds = a.TickDelta(0, ds)

	replayed := vclock.FlatOf(pre)
	replayed.Apply(ds)
	if !replayed.Flatten().Equal(a.Flatten()) {
		t.Fatalf("replay %v != live %v", replayed.Flatten(), a.Flatten())
	}
	if got := pre.Apply(ds); !got.Equal(a.Flatten()) {
		t.Fatalf("Vector.Apply %v != live %v", got, a.Flatten())
	}
}

// TestDeltaCaptureRandomized drives random join/tick sequences through a
// capturing clock and a shadow that only sees the captured deltas; the two
// must stay identical. This is the contract the track record buffers and the
// delta-encoded trace log both rest on: predecessor.Apply(deltas) is the
// successor, exactly.
func TestDeltaCaptureRandomized(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		const width, peers, steps = 12, 4, 200
		live := vclock.NewFlat(0)
		shadow := vclock.Vector(nil)
		peerClocks := make([]*vclock.Flat, peers)
		for i := range peerClocks {
			v := make(vclock.Vector, width)
			for j := range v {
				v[j] = uint64(rng.Intn(6))
			}
			peerClocks[i] = vclock.FlatOf(v)
		}
		var ds []vclock.Delta
		for s := 0; s < steps; s++ {
			ds = ds[:0]
			if rng.Intn(2) == 0 {
				ds = live.JoinDelta(peerClocks[rng.Intn(peers)], ds)
			} else {
				ds = live.TickDelta(rng.Intn(width), ds)
			}
			shadow = shadow.Apply(ds)
			if !shadow.Equal(live.Flatten()) {
				t.Fatalf("seed %d step %d: shadow %v, live %v", seed, s, shadow, live.Flatten())
			}
			// Peers advance too so joins keep finding new values.
			p := peerClocks[rng.Intn(peers)]
			p.Join(live)
			p.Tick(rng.Intn(width))
		}
	}
}
