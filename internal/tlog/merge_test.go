package tlog

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"

	"mixedclock/internal/event"
	"mixedclock/internal/vclock"
)

// splitComputation seals a sample computation as n consecutive segments
// (uneven sizes, same epoch) and returns the pieces plus the flat reference.
func splitComputation(t *testing.T, n, epoch int) (pieces [][]byte, events []event.Event, stamps []vclock.Vector) {
	t.Helper()
	tr, st := sampleComputation(t)
	events, stamps = tr.Events(), st
	rng := rand.New(rand.NewSource(int64(n)))
	at := 0
	for i := 0; i < n; i++ {
		size := (tr.Len() - at) / (n - i)
		if i < n-1 && size > 1 {
			size += rng.Intn(size) - size/2 // uneven cuts, still covering all
		}
		if i == n-1 {
			size = tr.Len() - at
		}
		meta := SegmentMeta{Epoch: epoch, FirstIndex: at, Count: size}
		pieces = append(pieces, sealSegment(t, meta, events[at:at+size], stamps[at:at+size]))
		at += size
	}
	return pieces, events, stamps
}

// TestMergeSegmentsEquivalent is the merge's core contract: reading the
// merged segment yields exactly the records of reading the sources in order
// — same events (global indices included), same stamps, same per-record
// clock widths — with the meta spanning the whole run.
func TestMergeSegmentsEquivalent(t *testing.T) {
	for _, n := range []int{1, 2, 5} {
		pieces, events, stamps := splitComputation(t, n, 2)
		readers := make([]io.Reader, len(pieces))
		for i, p := range pieces {
			readers[i] = bytes.NewReader(p)
		}
		var merged bytes.Buffer
		meta, err := MergeSegments(&merged, readers...)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := SegmentMeta{Epoch: 2, FirstIndex: 0, Count: len(events)}
		if meta != want {
			t.Fatalf("n=%d: merged meta %+v, want %+v", n, meta, want)
		}
		sr, err := NewSegmentReader(bytes.NewReader(merged.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		gotEv, gotSt := readSegment(t, sr)
		if len(gotEv) != len(events) {
			t.Fatalf("n=%d: merged has %d records, want %d", n, len(gotEv), len(events))
		}
		for i := range events {
			if gotEv[i] != events[i] {
				t.Fatalf("n=%d: record %d event %+v, want %+v", n, i, gotEv[i], events[i])
			}
			if !gotSt[i].Equal(stamps[i]) || len(gotSt[i]) != len(stamps[i]) {
				t.Fatalf("n=%d: record %d stamp %v (width %d), want %v (width %d)",
					n, i, gotSt[i], len(gotSt[i]), stamps[i], len(stamps[i]))
			}
		}
		// Merging must not cost bytes: one header and one sync point per
		// thread instead of n of each.
		if n > 1 {
			var total int
			for _, p := range pieces {
				total += len(p)
			}
			if merged.Len() >= total {
				t.Fatalf("n=%d: merged segment is %d bytes, sources total %d", n, merged.Len(), total)
			}
		}
	}
}

// TestMergeSegmentsRejectsBadRuns pins the run checks: epoch mixtures, index
// gaps, overlaps and empty input all fail before any output is produced.
func TestMergeSegmentsRejectsBadRuns(t *testing.T) {
	tr, stamps := sampleComputation(t)
	events := tr.Events()
	half := tr.Len() / 2
	seal := func(epoch, first int, ev []event.Event, st []vclock.Vector) []byte {
		return sealSegment(t, SegmentMeta{Epoch: epoch, FirstIndex: first, Count: len(ev)}, ev, st)
	}
	a := seal(0, 0, events[:half], stamps[:half])
	cases := []struct {
		name string
		b    []byte
		want string
	}{
		{"epoch mixture", seal(1, half, events[half:], stamps[half:]), "epoch"},
		{"gap", seal(0, half+3, events[half:], stamps[half:]), "gapless"},
		{"overlap", seal(0, half-1, events[half:], stamps[half:]), "gapless"},
	}
	for _, tc := range cases {
		var out bytes.Buffer
		_, err := MergeSegments(&out, bytes.NewReader(a), bytes.NewReader(tc.b))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
		if out.Len() != 0 {
			t.Errorf("%s: wrote %d bytes despite failing", tc.name, out.Len())
		}
	}
	if _, err := MergeSegments(&bytes.Buffer{}); err == nil {
		t.Error("merging zero segments succeeded")
	}
}

// TestPlanSegmentCompaction pins the tiering rules on hand-built shapes.
func TestPlanSegmentCompaction(t *testing.T) {
	seg := func(epoch, first, count int, bytes int64) SegmentStat {
		return SegmentStat{Meta: SegmentMeta{Epoch: epoch, FirstIndex: first, Count: count}, Bytes: bytes}
	}
	run := func(n int, each int64) []SegmentStat {
		var s []SegmentStat
		for i := 0; i < n; i++ {
			s = append(s, seg(0, i*10, 10, each))
		}
		return s
	}
	cases := []struct {
		name   string
		segs   []SegmentStat
		max    int
		target int64
		want   [][2]int
	}{
		{"under max plans nothing", run(4, 100), 8, 0, nil},
		{"no cap merges the whole epoch run", run(6, 100), 4, 0, [][2]int{{0, 6}}},
		{"target splits into tiers", run(6, 100), 4, 300, [][2]int{{0, 3}, {3, 6}}},
		{"graduated segments stand alone", []SegmentStat{
			seg(0, 0, 10, 1000), seg(0, 10, 10, 50), seg(0, 20, 10, 50), seg(0, 30, 10, 1000),
		}, 2, 500, [][2]int{{1, 3}}},
		{"epoch boundary breaks the run", []SegmentStat{
			seg(0, 0, 10, 50), seg(0, 10, 10, 50), seg(1, 20, 10, 50), seg(1, 30, 10, 50),
		}, 1, 0, [][2]int{{0, 2}, {2, 4}}},
		{"index gap breaks the run", []SegmentStat{
			seg(0, 0, 10, 50), seg(0, 15, 10, 50), seg(0, 25, 10, 50),
		}, 1, 0, [][2]int{{1, 3}}},
		{"unconditional when max unset", run(2, 100), 0, 0, [][2]int{{0, 2}}},
	}
	for _, tc := range cases {
		got := PlanSegmentCompaction(tc.segs, tc.max, tc.target)
		if len(got) != len(tc.want) {
			t.Errorf("%s: plan %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: plan %v, want %v", tc.name, got, tc.want)
				break
			}
		}
	}
}
