package treeclock

import (
	"math/rand"
	"testing"

	"mixedclock/internal/vclock"
)

func TestTreeTickDelta(t *testing.T) {
	tc := New(0)
	var ds []vclock.Delta
	ds = tc.TickDelta(2, ds)
	ds = tc.TickDelta(2, ds)
	ds = tc.TickDelta(0, ds)
	want := []vclock.Delta{{Index: 2, Value: 1}, {Index: 2, Value: 2}, {Index: 0, Value: 1}}
	for i := range want {
		if ds[i] != want[i] {
			t.Fatalf("delta %d = %v, want %v", i, ds[i], want[i])
		}
	}
	requireFlat(t, tc, vclock.Vector{1, 0, 2}, "after captured ticks")
}

func TestTreeApplyKeepsInvariants(t *testing.T) {
	tc := FromVector(vclock.Vector{1, 0, 2, 3})
	tc.Apply([]vclock.Delta{{Index: 1, Value: 4}, {Index: 0, Value: 2}, {Index: 1, Value: 5}})
	requireFlat(t, tc, vclock.Vector{2, 5, 2, 3}, "after Apply")
	if err := checkInvariants(tc); err != nil {
		t.Fatal(err)
	}
	// Equal or smaller values are ignored (monotone replay contract).
	tc.Apply([]vclock.Delta{{Index: 0, Value: 2}, {Index: 2, Value: 1}})
	requireFlat(t, tc, vclock.Vector{2, 5, 2, 3}, "after no-op Apply")
}

// TestJoinDeltaMatchesFlatCapture runs the mixed-clock discipline over both
// backends with change capture on, checking per event that (a) the two
// backends capture the same change set and (b) replaying either capture onto
// the previous flat stamp reproduces the new one. The tree side emits its
// deltas straight from the mark walk, so this also pins the fused
// detach/attach join against the reference.
func TestJoinDeltaMatchesFlatCapture(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		const nThreads, nObjects, events = 5, 5, 250

		flatT := make([]*vclock.Flat, nThreads)
		treeT := make([]*TreeClock, nThreads)
		shadowT := make([]vclock.Vector, nThreads)
		for i := range flatT {
			flatT[i], treeT[i] = vclock.NewFlat(0), New(0)
		}
		flatO := make([]*vclock.Flat, nObjects)
		treeO := make([]*TreeClock, nObjects)
		for i := range flatO {
			flatO[i], treeO[i] = vclock.NewFlat(0), New(0)
		}

		var fds, tds []vclock.Delta
		for ev := 0; ev < events; ev++ {
			tid := rng.Intn(nThreads)
			oid := rng.Intn(nObjects)
			step := func(tv, ov vclock.Clock, ds []vclock.Delta) []vclock.Delta {
				ds = tv.JoinDelta(ov, ds[:0])
				ds = tv.TickDelta(nThreads+oid, ds)
				ds = tv.TickDelta(tid, ds)
				ov.Join(tv)
				return ds
			}
			fds = step(flatT[tid], flatO[oid], fds)
			tds = step(treeT[tid], treeO[oid], tds)

			if !flatT[tid].Flatten().Equal(treeT[tid].Flatten()) {
				t.Fatalf("seed %d event %d: backends diverge: flat %v, tree %v",
					seed, ev, flatT[tid].Flatten(), treeT[tid].Flatten())
			}
			// Same change set, order and duplicates aside.
			fset := deltaSet(fds)
			tset := deltaSet(tds)
			if len(fset) != len(tset) {
				t.Fatalf("seed %d event %d: capture sets differ: flat %v, tree %v", seed, ev, fds, tds)
			}
			for k, v := range fset {
				if tset[k] != v {
					t.Fatalf("seed %d event %d: component %d: flat captured %d, tree %d",
						seed, ev, k, v, tset[k])
				}
			}
			// Replay of the tree capture onto the previous stamp must equal
			// the new stamp.
			shadowT[tid] = shadowT[tid].Apply(tds)
			if !shadowT[tid].Equal(treeT[tid].Flatten()) {
				t.Fatalf("seed %d event %d: replay %v != live %v",
					seed, ev, shadowT[tid], treeT[tid].Flatten())
			}
			if err := checkInvariants(treeT[tid]); err != nil {
				t.Fatalf("seed %d event %d: %v", seed, ev, err)
			}
			if err := checkInvariants(treeO[oid]); err != nil {
				t.Fatalf("seed %d event %d: object: %v", seed, ev, err)
			}
		}
	}
}

// deltaSet folds an assignment sequence into its final per-component values.
func deltaSet(ds []vclock.Delta) map[int32]uint64 {
	m := make(map[int32]uint64, len(ds))
	for _, d := range ds {
		m[d.Index] = d.Value
	}
	return m
}
