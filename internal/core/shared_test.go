package core

import (
	"fmt"
	"sync"
	"testing"

	"mixedclock/internal/event"
)

func TestSharedCoverObserveCoversEveryEdge(t *testing.T) {
	s := NewSharedCover(NewCoverTracker(NewHybrid()))
	edges := []struct{ t, o int }{{0, 0}, {1, 0}, {0, 1}, {2, 2}, {1, 0}, {0, 0}}
	for _, e := range edges {
		thrIdx, objIdx, width := s.Observe(event.ThreadID(e.t), event.ObjectID(e.o))
		if thrIdx < 0 && objIdx < 0 {
			t.Fatalf("edge (%d,%d) observed but uncovered", e.t, e.o)
		}
		if width != s.Size() {
			t.Fatalf("width %d != size %d", width, s.Size())
		}
		if thrIdx >= width || objIdx >= width {
			t.Fatalf("component index out of range: thr=%d obj=%d width=%d", thrIdx, objIdx, width)
		}
	}
	// The cover invariant over the revealed graph.
	g := s.Graph()
	comps := NewComponentSet()
	for _, c := range s.Components() {
		comps.Add(c)
	}
	for _, e := range g.EdgeList() {
		if !comps.Covers(event.ThreadID(e.Thread), event.ObjectID(e.Object)) {
			t.Fatalf("edge %v not covered by %v", e, comps)
		}
	}
}

func TestSharedCoverIndicesAreStable(t *testing.T) {
	// Append-only component sets mean an index, once returned, never moves.
	s := NewSharedCover(NewCoverTracker(NaiveThreads{}))
	first, _, _ := s.Observe(0, 0)
	if first < 0 {
		t.Fatal("naive mechanism must cover via the thread")
	}
	for i := 1; i < 50; i++ {
		s.Observe(event.ThreadID(i), event.ObjectID(i%7))
	}
	again, _, _ := s.Observe(0, 0)
	if again != first {
		t.Fatalf("component index moved: %d → %d", first, again)
	}
}

func TestSharedCoverConcurrentReveal(t *testing.T) {
	// Many goroutines race to reveal overlapping edge sets; every Observe
	// must come back covered and the final state must equal a serial reveal
	// of the same edge set (same cover size for naive, which is
	// deterministic in the set of distinct threads revealed).
	s := NewSharedCover(NewCoverTracker(NaiveThreads{}))
	const nGoroutines, nThreads, nObjects, ops = 8, 10, 6, 400
	var wg sync.WaitGroup
	errs := make(chan error, nGoroutines)
	for g := 0; g < nGoroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				tid := event.ThreadID((g + i) % nThreads)
				oid := event.ObjectID((g * i) % nObjects)
				thrIdx, objIdx, width := s.Observe(tid, oid)
				if thrIdx < 0 && objIdx < 0 {
					errs <- fmt.Errorf("edge (%d,%d) observed but uncovered", tid, oid)
					return
				}
				if width == 0 {
					errs <- fmt.Errorf("edge (%d,%d): zero width after observe", tid, oid)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	if got := s.Size(); got != nThreads {
		t.Fatalf("naive cover size = %d, want %d (one per revealed thread)", got, nThreads)
	}
}
