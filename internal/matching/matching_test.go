package matching

import (
	"math/rand"
	"testing"

	"mixedclock/internal/bipartite"
)

// buildGraph constructs a graph from explicit edges on fixed-size sides.
func buildGraph(nT, nO int, edges [][2]int) *bipartite.Graph {
	g := bipartite.New(nT, nO)
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func TestHopcroftKarpHandCases(t *testing.T) {
	tests := []struct {
		name  string
		nT    int
		nO    int
		edges [][2]int
		want  int
	}{
		{"empty", 0, 0, nil, 0},
		{"no edges", 3, 3, nil, 0},
		{"single edge", 1, 1, [][2]int{{0, 0}}, 1},
		{"perfect 3x3 diagonal", 3, 3, [][2]int{{0, 0}, {1, 1}, {2, 2}}, 3},
		{"star needs one", 4, 1, [][2]int{{0, 0}, {1, 0}, {2, 0}, {3, 0}}, 1},
		{"two stars", 4, 2, [][2]int{{0, 0}, {1, 0}, {2, 1}, {3, 1}}, 2},
		{
			// The classic case where greedy fails: t0 may grab o1, forcing
			// an augmenting path to match both.
			"augmenting path needed", 2, 2,
			[][2]int{{0, 0}, {0, 1}, {1, 1}},
			2,
		},
		{
			"paper example (fig 2)", 4, 4,
			[][2]int{{1, 0}, {1, 1}, {1, 2}, {0, 1}, {2, 2}, {3, 1}, {2, 1}},
			3,
		},
		{"complete 3x2", 3, 2, [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}, {2, 1}}, 2},
		{
			"path graph", 3, 3,
			[][2]int{{0, 0}, {1, 0}, {1, 1}, {2, 1}, {2, 2}},
			3,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := buildGraph(tt.nT, tt.nO, tt.edges)
			m := HopcroftKarp(g)
			if m.Size() != tt.want {
				t.Errorf("HopcroftKarp size = %d, want %d", m.Size(), tt.want)
			}
			if err := m.Verify(g); err != nil {
				t.Errorf("invalid matching: %v", err)
			}
			k := Kuhn(g)
			if k.Size() != tt.want {
				t.Errorf("Kuhn size = %d, want %d", k.Size(), tt.want)
			}
			if err := k.Verify(g); err != nil {
				t.Errorf("invalid Kuhn matching: %v", err)
			}
		})
	}
}

func TestHopcroftKarpMatchesKuhnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 60; trial++ {
		nT := 1 + rng.Intn(40)
		nO := 1 + rng.Intn(40)
		g, err := bipartite.Generate(bipartite.GenConfig{
			NThreads: nT, NObjects: nO, Density: rng.Float64(),
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		hk := HopcroftKarp(g)
		ku := Kuhn(g)
		if hk.Size() != ku.Size() {
			t.Fatalf("trial %d: HK=%d Kuhn=%d on %v", trial, hk.Size(), ku.Size(), g)
		}
		if err := hk.Verify(g); err != nil {
			t.Fatalf("trial %d: HK invalid: %v", trial, err)
		}
	}
}

func TestKonigCoverCertificate(t *testing.T) {
	// König–Egerváry: for every graph, the cover from a maximum matching
	// must (a) cover all edges and (b) have size exactly |M|. Together these
	// certify both the matching's maximality and the cover's minimality.
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 80; trial++ {
		g, err := bipartite.Generate(bipartite.GenConfig{
			NThreads: 1 + rng.Intn(35),
			NObjects: 1 + rng.Intn(35),
			Density:  rng.Float64(),
			Scenario: bipartite.Scenario(1 + rng.Intn(2)),
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		m := HopcroftKarp(g)
		c := KonigCover(g, m)
		if err := c.Verify(g); err != nil {
			t.Fatalf("trial %d: cover invalid: %v", trial, err)
		}
		if c.Size() != m.Size() {
			t.Fatalf("trial %d: |cover|=%d != |matching|=%d", trial, c.Size(), m.Size())
		}
	}
}

func TestKonigCoverPaperExample(t *testing.T) {
	// Fig. 2 of the paper: a 4x4 computation whose minimum vertex cover has
	// size 3 (the paper picks {T2, O2, O3}; any size-3 cover is optimal).
	g := buildGraph(4, 4, [][2]int{
		{1, 0}, {1, 1}, {1, 2}, // T2 touches O1, O2, O3
		{0, 1}, // T1 touches O2
		{2, 2}, // T3 touches O3
		{3, 1}, // T4 touches O2
		{2, 1}, // T3 touches O2
	})
	c := MinVertexCover(g)
	if c.Size() != 3 {
		t.Fatalf("cover size = %d, want 3 (%v)", c.Size(), c)
	}
	if err := c.Verify(g); err != nil {
		t.Fatalf("cover invalid: %v", err)
	}
	if min := 4; c.Size() >= min {
		t.Fatalf("mixed cover %d not smaller than min(threads, objects) = %d", c.Size(), min)
	}
}

func TestCoverNeverExceedsEitherSide(t *testing.T) {
	// The mixed clock must never be larger than the thread-based or
	// object-based clock (§II): |cover| ≤ min(n, m) whenever every vertex
	// on the smaller side could cover everything.
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 50; trial++ {
		nT := 1 + rng.Intn(30)
		nO := 1 + rng.Intn(30)
		g, err := bipartite.Generate(bipartite.GenConfig{
			NThreads: nT, NObjects: nO, Density: rng.Float64(),
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		c := MinVertexCover(g)
		bound := nT
		if nO < bound {
			bound = nO
		}
		if c.Size() > bound {
			t.Fatalf("trial %d: cover %d exceeds min(%d, %d)", trial, c.Size(), nT, nO)
		}
	}
}

func TestCoverLookupAndString(t *testing.T) {
	c := &Cover{Threads: []int{1}, Objects: []int{1, 2}}
	if !c.HasThread(1) || c.HasThread(0) {
		t.Error("HasThread wrong")
	}
	if !c.HasObject(2) || c.HasObject(0) {
		t.Error("HasObject wrong")
	}
	if got := c.String(); got != "{T2, O2, O3}" {
		t.Errorf("String = %q, want {T2, O2, O3}", got)
	}
	empty := &Cover{}
	if got := empty.String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
	if empty.Size() != 0 {
		t.Errorf("empty Size = %d", empty.Size())
	}
}

func TestCoverVerifyRejectsBadCover(t *testing.T) {
	g := buildGraph(2, 2, [][2]int{{0, 0}, {1, 1}})
	bad := &Cover{Threads: []int{0}} // misses edge (1,1)
	if err := bad.Verify(g); err == nil {
		t.Fatal("uncovering cover accepted")
	}
}

func TestMatchingVerifyRejectsCorruption(t *testing.T) {
	g := buildGraph(2, 2, [][2]int{{0, 0}, {1, 1}})
	m := HopcroftKarp(g)

	tests := []struct {
		name    string
		corrupt func(*Matching)
	}{
		{"asymmetric", func(m *Matching) { m.ThreadMatch[0] = 1 }},
		{"non-edge", func(m *Matching) {
			m.ThreadMatch[0], m.ObjectMatch[1] = 1, 0
			m.ThreadMatch[1], m.ObjectMatch[0] = 0, 1
		}},
		{"out of range", func(m *Matching) { m.ThreadMatch[0] = 5 }},
		{"size lies", func(m *Matching) { m.size = 7 }},
		{"wrong dims", func(m *Matching) { m.ThreadMatch = m.ThreadMatch[:1] }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := &Matching{
				ThreadMatch: append([]int(nil), m.ThreadMatch...),
				ObjectMatch: append([]int(nil), m.ObjectMatch...),
				size:        m.size,
			}
			tt.corrupt(c)
			if err := c.Verify(g); err == nil {
				t.Error("corrupted matching accepted")
			}
		})
	}
}

func TestPairs(t *testing.T) {
	g := buildGraph(3, 3, [][2]int{{0, 1}, {2, 0}})
	m := HopcroftKarp(g)
	pairs := m.Pairs()
	if len(pairs) != 2 {
		t.Fatalf("Pairs len = %d, want 2", len(pairs))
	}
	want := map[bipartite.Edge]bool{{Thread: 0, Object: 1}: true, {Thread: 2, Object: 0}: true}
	for _, p := range pairs {
		if !want[p] {
			t.Errorf("unexpected pair %v", p)
		}
	}
}

func TestGreedyCoverValidAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 40; trial++ {
		g, err := bipartite.Generate(bipartite.GenConfig{
			NThreads: 1 + rng.Intn(30),
			NObjects: 1 + rng.Intn(30),
			Density:  rng.Float64(),
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		greedy := GreedyCover(g)
		if err := greedy.Verify(g); err != nil {
			t.Fatalf("trial %d: greedy cover invalid: %v", trial, err)
		}
		optimal := MinVertexCover(g)
		if greedy.Size() < optimal.Size() {
			t.Fatalf("trial %d: greedy %d beat optimal %d — impossible", trial, greedy.Size(), optimal.Size())
		}
		// Greedy for vertex cover on bipartite graphs is a ln-factor
		// approximation in theory; sanity-check a loose factor here.
		if optimal.Size() > 0 && greedy.Size() > 3*optimal.Size() {
			t.Fatalf("trial %d: greedy %d vs optimal %d beyond expected factor", trial, greedy.Size(), optimal.Size())
		}
	}
}

func TestGreedyCoverEmpty(t *testing.T) {
	c := GreedyCover(bipartite.New(3, 3))
	if c.Size() != 0 {
		t.Fatalf("greedy cover of empty graph = %v", c)
	}
}

func TestMinVertexCoverDenseGraph(t *testing.T) {
	// Complete bipartite K(n,m): min cover = min(n, m).
	g := bipartite.New(5, 7)
	for tID := 0; tID < 5; tID++ {
		for o := 0; o < 7; o++ {
			g.AddEdge(tID, o)
		}
	}
	c := MinVertexCover(g)
	if c.Size() != 5 {
		t.Fatalf("K(5,7) cover = %d, want 5", c.Size())
	}
}

func TestMinVertexCoverChainGraph(t *testing.T) {
	// A path t0-o0-t1-o1-...: cover size = ceil(edges/2) alternating.
	g := bipartite.New(4, 4)
	g.AddEdge(0, 0)
	g.AddEdge(1, 0)
	g.AddEdge(1, 1)
	g.AddEdge(2, 1)
	g.AddEdge(2, 2)
	g.AddEdge(3, 2)
	g.AddEdge(3, 3)
	// Path with 7 edges and 8 vertices: max matching (= min cover) is 4? No:
	// a path with 2k edges has matching k; 7 edges -> matching 4 requires 8
	// vertex-disjoint endpoints; here matching = 4 (edges 1,3,5,7).
	c := MinVertexCover(g)
	if c.Size() != 4 {
		t.Fatalf("path cover = %d, want 4 (%v)", c.Size(), c)
	}
	if err := c.Verify(g); err != nil {
		t.Fatal(err)
	}
}
