package trace

import (
	"math/rand"
	"testing"

	"mixedclock/internal/bipartite"
	"mixedclock/internal/clock"
	"mixedclock/internal/core"
)

func TestWorkloadString(t *testing.T) {
	for _, w := range Workloads() {
		if s := w.String(); s == "" || s[0] == 'W' {
			t.Errorf("workload %d has bad name %q", int(w), s)
		}
	}
	if got := Workload(99).String(); got != "Workload(99)" {
		t.Errorf("unknown workload name %q", got)
	}
}

func TestGenerateAllWorkloads(t *testing.T) {
	cfg := Config{Threads: 8, Objects: 16, Events: 400}
	for _, w := range Workloads() {
		w := w
		t.Run(w.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			tr, err := Generate(w, cfg, rng)
			if err != nil {
				t.Fatal(err)
			}
			if tr.Len() < cfg.Events {
				t.Fatalf("trace has %d events, want ≥ %d", tr.Len(), cfg.Events)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			if tr.Threads() > cfg.Threads || tr.Objects() > cfg.Objects {
				t.Fatalf("trace uses %d/%d, config allows %d/%d",
					tr.Threads(), tr.Objects(), cfg.Threads, cfg.Objects)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Threads: 6, Objects: 6, Events: 200}
	for _, w := range Workloads() {
		tr1, err := Generate(w, cfg, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		tr2, err := Generate(w, cfg, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		if tr1.Len() != tr2.Len() {
			t.Fatalf("%v: same seed, different lengths", w)
		}
		for i := 0; i < tr1.Len(); i++ {
			if tr1.At(i) != tr2.At(i) {
				t.Fatalf("%v: same seed, diverged at event %d", w, i)
			}
		}
	}
}

func TestGenerateUnknownWorkload(t *testing.T) {
	if _, err := Generate(Workload(99), Config{Threads: 1, Objects: 1, Events: 1}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Threads: 0, Objects: 1, Events: 1},
		{Threads: 1, Objects: 0, Events: 1},
		{Threads: 1, Objects: 1, Events: -1},
		{Threads: 1, Objects: 1, Events: 1, ReadFraction: 1.5},
		{Threads: 1, Objects: 1, Events: 1, ZipfSkew: 0.5},
		{Threads: 1, Objects: 1, Events: 1, HotFraction: 2},
		{Threads: 1, Objects: 1, Events: 1, HotProb: -0.1},
	}
	for i, cfg := range bad {
		if _, err := Generate(Uniform, cfg, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestReadFraction(t *testing.T) {
	cfg := Config{Threads: 4, Objects: 4, Events: 2000, ReadFraction: 0.5}
	tr, err := Generate(Uniform, cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Summarize()
	frac := float64(s.Reads) / float64(s.Events)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("read fraction %f too far from 0.5", frac)
	}
}

func TestHotSetSkew(t *testing.T) {
	cfg := Config{Threads: 20, Objects: 20, Events: 4000}
	tr, err := Generate(HotSet, cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	// Hot objects are ids 0..1 (10% of 20); with HotProb 0.8 they should
	// absorb most events (the bipartite projection saturates on long
	// traces, so count events, not edges).
	counts := make([]int, 20)
	for _, e := range tr.Events() {
		counts[e.Object]++
	}
	hot := counts[0] + counts[1]
	cold := 0
	for o := 2; o < 20; o++ {
		cold += counts[o]
	}
	if hot < 2*cold {
		t.Fatalf("hot objects not hot: hot=%d cold=%d", hot, cold)
	}
}

func TestZipfContention(t *testing.T) {
	cfg := Config{Threads: 10, Objects: 50, Events: 3000}
	tr, err := Generate(Zipf, cfg, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 50)
	for _, e := range tr.Events() {
		counts[e.Object]++
	}
	if counts[0] < counts[49]*3 {
		t.Fatalf("no zipf skew: first=%d last=%d", counts[0], counts[49])
	}
}

func TestReadersWritersMostlyReads(t *testing.T) {
	cfg := Config{Threads: 8, Objects: 8, Events: 2000}
	tr, err := Generate(ReadersWriters, cfg, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Summarize()
	if s.Reads < s.Writes {
		t.Fatalf("readers-writers generated %d reads vs %d writes", s.Reads, s.Writes)
	}
}

func TestPhasedHasBarrier(t *testing.T) {
	cfg := Config{Threads: 6, Objects: 12, Events: 600, Phases: 3}
	tr, err := Generate(Phased, cfg, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	// Every thread must touch the barrier object (object 0) in each phase:
	// at least Threads × Phases barrier events.
	barrier := 0
	for _, e := range tr.Events() {
		if e.Object == 0 {
			barrier++
		}
	}
	if barrier < 18 {
		t.Fatalf("barrier events = %d, want ≥ 18", barrier)
	}
}

func TestLockStripedLocality(t *testing.T) {
	cfg := Config{Threads: 8, Objects: 32, Events: 2000, Stripes: 4}
	tr, err := Generate(LockStriped, cfg, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	// Most events should stay in the thread's home stripe (tid % 4).
	home := 0
	for _, e := range tr.Events() {
		if int(e.Object)%4 == int(e.Thread)%4 {
			home++
		}
	}
	if float64(home)/float64(tr.Len()) < 0.8 {
		t.Fatalf("only %d/%d events in home stripe", home, tr.Len())
	}
}

func TestFromGraphCoversAllEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g, err := bipartite.Generate(bipartite.GenConfig{NThreads: 10, NObjects: 10, Density: 0.3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	tr := FromGraph(g, 50, rng)
	if tr.Len() != g.Edges()+50 {
		t.Fatalf("trace length %d, want %d", tr.Len(), g.Edges()+50)
	}
	back := bipartite.FromTrace(tr)
	if back.Edges() != g.Edges() {
		t.Fatalf("projection has %d edges, want %d", back.Edges(), g.Edges())
	}
	for _, e := range g.EdgeList() {
		if !back.HasEdge(e.Thread, e.Object) {
			t.Fatalf("edge %v lost", e)
		}
	}
}

func TestFromGraphEmpty(t *testing.T) {
	tr := FromGraph(bipartite.New(3, 3), 10, rand.New(rand.NewSource(1)))
	if tr.Len() != 0 {
		t.Fatalf("empty graph gave %d events", tr.Len())
	}
}

func TestAllWorkloadsYieldValidMixedClocks(t *testing.T) {
	// End-to-end: for every workload family, the offline mixed clock must
	// be valid and no larger than min(threads, objects).
	cfg := Config{Threads: 5, Objects: 7, Events: 60}
	for _, w := range Workloads() {
		w := w
		t.Run(w.String(), func(t *testing.T) {
			tr, err := Generate(w, cfg, rand.New(rand.NewSource(11)))
			if err != nil {
				t.Fatal(err)
			}
			a := core.AnalyzeTrace(tr)
			if err := a.Verify(); err != nil {
				t.Fatal(err)
			}
			if a.VectorSize() > 5 {
				t.Fatalf("mixed clock size %d exceeds min(5, 7)", a.VectorSize())
			}
			if _, err := clock.RunAndValidate(tr, a.NewClock()); err != nil {
				t.Fatal(err)
			}
		})
	}
}
