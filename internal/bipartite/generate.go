package bipartite

import (
	"fmt"
	"math/rand"
)

// Scenario selects one of the paper's two evaluation graph families (§V).
type Scenario int

const (
	// Uniform adds each possible edge independently with the same
	// probability, so every thread and object has the same expected
	// popularity.
	Uniform Scenario = iota + 1
	// Nonuniform marks a small fraction of threads and objects "hot";
	// edges touching a hot endpoint are boost× more likely, while the
	// overall expected density is preserved.
	Nonuniform
)

// String returns "uniform" or "nonuniform".
func (s Scenario) String() string {
	switch s {
	case Uniform:
		return "uniform"
	case Nonuniform:
		return "nonuniform"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// GenConfig parameterizes random graph generation. The zero value is not
// useful; fill in NThreads, NObjects and Density at minimum.
type GenConfig struct {
	NThreads int
	NObjects int
	// Density is the expected fraction of present edges in [0, 1].
	Density  float64
	Scenario Scenario
	// HotFraction is the fraction of each side marked hot in the
	// Nonuniform scenario (default 0.1).
	HotFraction float64
	// HotBoost is how many times more likely an edge is when at least one
	// endpoint is hot (default 16).
	HotBoost float64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Scenario == 0 {
		c.Scenario = Uniform
	}
	if c.HotFraction == 0 {
		c.HotFraction = 0.1
	}
	if c.HotBoost == 0 {
		c.HotBoost = 16
	}
	return c
}

// Validate reports the first invalid field.
func (c GenConfig) Validate() error {
	c = c.withDefaults()
	switch {
	case c.NThreads < 0 || c.NObjects < 0:
		return fmt.Errorf("bipartite: negative side size (%d, %d)", c.NThreads, c.NObjects)
	case c.Density < 0 || c.Density > 1:
		return fmt.Errorf("bipartite: density %f outside [0,1]", c.Density)
	case c.Scenario != Uniform && c.Scenario != Nonuniform:
		return fmt.Errorf("bipartite: unknown scenario %d", int(c.Scenario))
	case c.HotFraction < 0 || c.HotFraction > 1:
		return fmt.Errorf("bipartite: hot fraction %f outside [0,1]", c.HotFraction)
	case c.HotBoost < 1:
		return fmt.Errorf("bipartite: hot boost %f below 1", c.HotBoost)
	}
	return nil
}

// Generate builds a random thread–object graph according to cfg, using rng
// for all randomness (same seed ⇒ same graph).
func Generate(cfg GenConfig, rng *rand.Rand) (*Graph, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := New(cfg.NThreads, cfg.NObjects)
	switch cfg.Scenario {
	case Uniform:
		for t := 0; t < cfg.NThreads; t++ {
			for o := 0; o < cfg.NObjects; o++ {
				if rng.Float64() < cfg.Density {
					g.AddEdge(t, o)
				}
			}
		}
	case Nonuniform:
		hotT := int(float64(cfg.NThreads) * cfg.HotFraction)
		hotO := int(float64(cfg.NObjects) * cfg.HotFraction)
		pCold, pHot := nonuniformProbs(cfg, hotT, hotO)
		for t := 0; t < cfg.NThreads; t++ {
			for o := 0; o < cfg.NObjects; o++ {
				p := pCold
				if t < hotT || o < hotO {
					p = pHot
				}
				if rng.Float64() < p {
					g.AddEdge(t, o)
				}
			}
		}
	}
	return g, nil
}

// nonuniformProbs solves for the cold edge probability so that the expected
// density of the Nonuniform graph matches cfg.Density:
//
//	hotPairs·min(1, boost·p) + coldPairs·p = density·allPairs
//
// where a pair is hot when either endpoint is hot. The first hotT threads and
// hotO objects are the hot sets (the caller shuffles reveal order downstream,
// so fixed positions lose no generality).
func nonuniformProbs(cfg GenConfig, hotT, hotO int) (pCold, pHot float64) {
	total := float64(cfg.NThreads * cfg.NObjects)
	if total == 0 {
		return 0, 0
	}
	coldPairs := float64((cfg.NThreads - hotT) * (cfg.NObjects - hotO))
	hotPairs := total - coldPairs
	want := cfg.Density * total
	// Assume the hot probability is unsaturated first.
	p := want / (hotPairs*cfg.HotBoost + coldPairs)
	if cfg.HotBoost*p <= 1 {
		return p, cfg.HotBoost * p
	}
	// Hot pairs saturate at probability 1; put the remainder on cold pairs.
	pHot = 1
	if coldPairs > 0 {
		pCold = (want - hotPairs) / coldPairs
		if pCold < 0 {
			pCold = 0
		}
		if pCold > 1 {
			pCold = 1
		}
	}
	return pCold, pHot
}

// GenerateZipf builds a graph where each thread draws k distinct objects from
// a Zipf distribution over objects (skew s > 1). It models contended hot
// objects — an alternative nonuniform family used by the extra ablations.
func GenerateZipf(nThreads, nObjects, objectsPerThread int, skew float64, rng *rand.Rand) (*Graph, error) {
	if nThreads < 0 || nObjects < 0 {
		return nil, fmt.Errorf("bipartite: negative side size (%d, %d)", nThreads, nObjects)
	}
	if objectsPerThread < 0 {
		return nil, fmt.Errorf("bipartite: negative objects per thread %d", objectsPerThread)
	}
	if skew <= 1 {
		return nil, fmt.Errorf("bipartite: zipf skew %f must exceed 1", skew)
	}
	g := New(nThreads, nObjects)
	if nObjects == 0 {
		return g, nil
	}
	z := rand.NewZipf(rng, skew, 1, uint64(nObjects-1))
	if objectsPerThread > nObjects {
		objectsPerThread = nObjects
	}
	for t := 0; t < nThreads; t++ {
		picked := make(map[int]struct{}, objectsPerThread)
		// Rejection-sample distinct objects; cap attempts so pathological
		// skews cannot loop forever, falling back to a linear scan.
		for attempts := 0; len(picked) < objectsPerThread && attempts < 64*objectsPerThread; attempts++ {
			picked[int(z.Uint64())] = struct{}{}
		}
		for o := 0; len(picked) < objectsPerThread; o++ {
			picked[o%nObjects] = struct{}{}
		}
		for o := range picked {
			g.AddEdge(t, o)
		}
	}
	return g, nil
}

// RevealOrder returns the graph's edges in a random order, modelling the
// online setting where the computation reveals one event (first operation on
// each new thread–object pair) at a time.
func (g *Graph) RevealOrder(rng *rand.Rand) []Edge {
	edges := g.EdgeList()
	rng.Shuffle(len(edges), func(i, j int) {
		edges[i], edges[j] = edges[j], edges[i]
	})
	return edges
}
