package hb

import (
	"math/rand"
	"testing"

	"mixedclock/internal/event"
)

// paperTrace builds a small computation used across tests:
//
//	e0 = T1 on O1, e1 = T2 on O2, e2 = T1 on O2, e3 = T2 on O1, e4 = T3 on O3
//
// Causal edges: e0→e2 (thread T1), e1→e2 (object O2)... no: e1 is T2 on O2,
// e2 is T1 on O2 so e1→e2 via O2. e1→e3 via thread T2, e0→e3 via object O1.
// e4 is isolated.
func paperTrace() *event.Trace {
	tr := event.NewTrace()
	tr.Append(0, 0, event.OpWrite) // e0
	tr.Append(1, 1, event.OpWrite) // e1
	tr.Append(0, 1, event.OpWrite) // e2
	tr.Append(1, 0, event.OpWrite) // e3
	tr.Append(2, 2, event.OpWrite) // e4
	return tr
}

func TestHappenedBeforeDirect(t *testing.T) {
	o := New(paperTrace())
	direct := []struct {
		i, j int
	}{
		{0, 2}, // T1 program order
		{1, 2}, // O2 object order
		{1, 3}, // T2 program order
		{0, 3}, // O1 object order
	}
	for _, d := range direct {
		if !o.HappenedBefore(d.i, d.j) {
			t.Errorf("e%d → e%d expected", d.i, d.j)
		}
		if o.HappenedBefore(d.j, d.i) {
			t.Errorf("e%d → e%d unexpected", d.j, d.i)
		}
	}
}

func TestHappenedBeforeIsStrict(t *testing.T) {
	o := New(paperTrace())
	for i := 0; i < o.Len(); i++ {
		if o.HappenedBefore(i, i) {
			t.Errorf("e%d → e%d: relation must be irreflexive", i, i)
		}
		if o.Concurrent(i, i) {
			t.Errorf("e%d ‖ e%d: an event is not concurrent with itself", i, i)
		}
	}
}

func TestConcurrentAndComparable(t *testing.T) {
	o := New(paperTrace())
	if !o.Concurrent(0, 1) {
		t.Error("e0 ‖ e1 expected")
	}
	if !o.Concurrent(2, 3) {
		t.Error("e2 ‖ e3 expected (both depend on e0, e1 but not on each other)")
	}
	for i := 0; i < 4; i++ {
		if !o.Concurrent(i, 4) {
			t.Errorf("e%d ‖ e4 expected (e4 isolated)", i)
		}
	}
	if !o.Comparable(0, 2) || o.Comparable(0, 1) {
		t.Error("Comparable wrong")
	}
}

func TestTransitivity(t *testing.T) {
	// Chain through thread and object orders:
	// e0 = T1/O1, e1 = T1/O2 (e0→e1 thread), e2 = T2/O2 (e1→e2 object),
	// e3 = T2/O3 (e2→e3 thread). Then e0→e3 transitively.
	tr := event.NewTrace()
	tr.Append(0, 0, event.OpWrite)
	tr.Append(0, 1, event.OpWrite)
	tr.Append(1, 1, event.OpWrite)
	tr.Append(1, 2, event.OpWrite)
	o := New(tr)
	if !o.HappenedBefore(0, 3) {
		t.Fatal("transitive closure missing e0 → e3")
	}
}

func TestTransitivityRandom(t *testing.T) {
	// For random traces: i → j and j → k must imply i → k.
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		tr := randomTrace(rng, 4, 4, 40)
		o := New(tr)
		n := o.Len()
		for i := 0; i < n; i++ {
			for _, j := range o.UpSet(i) {
				for _, k := range o.UpSet(j) {
					if !o.HappenedBefore(i, k) {
						t.Fatalf("trial %d: %d→%d→%d but not %d→%d", trial, i, j, k, i, k)
					}
				}
			}
		}
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	o := New(paperTrace())
	if got := o.ThreadSuccessor(0); got != 2 {
		t.Errorf("ThreadSuccessor(0) = %d, want 2", got)
	}
	if got := o.ObjectSuccessor(0); got != 3 {
		t.Errorf("ObjectSuccessor(0) = %d, want 3", got)
	}
	if got := o.ThreadPredecessor(2); got != 0 {
		t.Errorf("ThreadPredecessor(2) = %d, want 0", got)
	}
	if got := o.ObjectPredecessor(3); got != 0 {
		t.Errorf("ObjectPredecessor(3) = %d, want 0", got)
	}
	if got := o.ThreadSuccessor(4); got != -1 {
		t.Errorf("ThreadSuccessor(4) = %d, want -1", got)
	}
	if got := o.ObjectPredecessor(0); got != -1 {
		t.Errorf("ObjectPredecessor(0) = %d, want -1", got)
	}
}

func TestDownSetUpSet(t *testing.T) {
	o := New(paperTrace())
	if got := o.DownSet(2); !equalInts(got, []int{0, 1}) {
		t.Errorf("DownSet(2) = %v, want [0 1]", got)
	}
	if got := o.UpSet(0); !equalInts(got, []int{2, 3}) {
		t.Errorf("UpSet(0) = %v, want [2 3]", got)
	}
	if got := o.UpSet(4); len(got) != 0 {
		t.Errorf("UpSet(4) = %v, want empty", got)
	}
}

func TestConcurrentPairs(t *testing.T) {
	o := New(paperTrace())
	// 5 events, C(5,2)=10 pairs; ordered pairs: (0,2),(0,3),(1,2),(1,3) = 4.
	if got := o.ConcurrentPairs(); got != 6 {
		t.Errorf("ConcurrentPairs = %d, want 6", got)
	}
}

func TestConcurrentPairsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 15; trial++ {
		tr := randomTrace(rng, 3, 5, 30)
		o := New(tr)
		brute := 0
		for i := 0; i < o.Len(); i++ {
			for j := i + 1; j < o.Len(); j++ {
				if o.Concurrent(i, j) {
					brute++
				}
			}
		}
		if got := o.ConcurrentPairs(); got != brute {
			t.Fatalf("trial %d: ConcurrentPairs = %d, brute force = %d", trial, got, brute)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	o := New(paperTrace())
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index did not panic")
		}
	}()
	o.HappenedBefore(0, 99)
}

func TestSingleThreadIsChain(t *testing.T) {
	tr := event.NewTrace()
	for i := 0; i < 10; i++ {
		tr.Append(0, event.ObjectID(i%3), event.OpWrite)
	}
	o := New(tr)
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			if !o.HappenedBefore(i, j) {
				t.Fatalf("single thread: e%d → e%d missing", i, j)
			}
		}
	}
	if w := o.Width(); w != 1 {
		t.Errorf("single-thread width = %d, want 1", w)
	}
	if h := o.Height(); h != 10 {
		t.Errorf("single-thread height = %d, want 10", h)
	}
}

func TestIndependentThreadsAreAntichain(t *testing.T) {
	tr := event.NewTrace()
	for i := 0; i < 6; i++ {
		tr.Append(event.ThreadID(i), event.ObjectID(i), event.OpWrite)
	}
	o := New(tr)
	if got := o.ConcurrentPairs(); got != 15 {
		t.Errorf("ConcurrentPairs = %d, want 15", got)
	}
	if w := o.Width(); w != 6 {
		t.Errorf("width = %d, want 6", w)
	}
	if h := o.Height(); h != 1 {
		t.Errorf("height = %d, want 1", h)
	}
}

func TestWidthPaperTrace(t *testing.T) {
	o := New(paperTrace())
	// {e0, e1, e4} and {e2, e3, e4} are maximum antichains of size 3.
	if w := o.Width(); w != 3 {
		t.Errorf("width = %d, want 3", w)
	}
	if h := o.Height(); h != 2 {
		t.Errorf("height = %d, want 2", h)
	}
}

func TestEmptyTrace(t *testing.T) {
	o := New(event.NewTrace())
	if o.Len() != 0 || o.Width() != 0 || o.Height() != 0 {
		t.Fatal("empty trace should have zero len/width/height")
	}
	if o.ChainCover() != nil {
		t.Fatal("empty trace chain cover should be nil")
	}
}

func TestChainCover(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		tr := randomTrace(rng, 4, 4, 30)
		o := New(tr)
		chains := o.ChainCover()
		if len(chains) != o.Width() {
			t.Fatalf("trial %d: %d chains, width %d", trial, len(chains), o.Width())
		}
		seen := make([]bool, o.Len())
		for _, chain := range chains {
			for k, e := range chain {
				if seen[e] {
					t.Fatalf("trial %d: event %d in two chains", trial, e)
				}
				seen[e] = true
				if k > 0 && !o.HappenedBefore(chain[k-1], e) {
					t.Fatalf("trial %d: chain not ordered at %d", trial, e)
				}
			}
		}
		for e, ok := range seen {
			if !ok {
				t.Fatalf("trial %d: event %d not covered", trial, e)
			}
		}
	}
}

func TestHeightMatchesLongestChainBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 10; trial++ {
		tr := randomTrace(rng, 3, 3, 14)
		o := New(tr)
		// Brute-force longest chain via DP over the full closure.
		n := o.Len()
		best := make([]int, n)
		overall := 0
		for i := 0; i < n; i++ {
			best[i] = 1
			for j := 0; j < i; j++ {
				if o.HappenedBefore(j, i) && best[j]+1 > best[i] {
					best[i] = best[j] + 1
				}
			}
			if best[i] > overall {
				overall = best[i]
			}
		}
		if got := o.Height(); got != overall {
			t.Fatalf("trial %d: Height = %d, brute force = %d", trial, got, overall)
		}
	}
}

func randomTrace(rng *rand.Rand, threads, objects, events int) *event.Trace {
	tr := event.NewTrace()
	for i := 0; i < events; i++ {
		tr.Append(event.ThreadID(rng.Intn(threads)), event.ObjectID(rng.Intn(objects)), event.OpWrite)
	}
	return tr
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
