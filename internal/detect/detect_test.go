package detect

import (
	"math/rand"
	"testing"

	"mixedclock/internal/clock"
	"mixedclock/internal/core"
	"mixedclock/internal/event"
	"mixedclock/internal/hb"
)

func randomTrace(rng *rand.Rand, threads, objects, events int) *event.Trace {
	tr := event.NewTrace()
	for i := 0; i < events; i++ {
		op := event.OpWrite
		if rng.Intn(2) == 0 {
			op = event.OpRead
		}
		tr.Append(event.ThreadID(rng.Intn(threads)), event.ObjectID(rng.Intn(objects)), op)
	}
	return tr
}

func TestCensusMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		tr := randomTrace(rng, 4, 4, 40)
		stamps := clock.Run(tr, core.AnalyzeTrace(tr).NewClock())
		c := TakeCensus(stamps)
		oracle := hb.New(tr)
		if c.Concurrent != oracle.ConcurrentPairs() {
			t.Fatalf("trial %d: census says %d concurrent, oracle %d",
				trial, c.Concurrent, oracle.ConcurrentPairs())
		}
		if c.Total != tr.Len()*(tr.Len()-1)/2 {
			t.Fatalf("trial %d: total pairs %d", trial, c.Total)
		}
		if c.Ordered+c.Concurrent != c.Total {
			t.Fatalf("trial %d: census does not add up: %+v", trial, c)
		}
	}
}

func TestCensusParallelismBounds(t *testing.T) {
	if got := (Census{}).Parallelism(); got != 0 {
		t.Errorf("empty census parallelism = %f", got)
	}
	c := Census{Total: 10, Concurrent: 5}
	if got := c.Parallelism(); got != 0.5 {
		t.Errorf("parallelism = %f, want 0.5", got)
	}
}

func TestScheduleSensitiveSimple(t *testing.T) {
	// Two threads write the same object with no other synchronization:
	// their ordering is lock-only.
	tr := event.NewTrace()
	tr.Append(0, 0, event.OpWrite)
	tr.Append(1, 0, event.OpWrite)
	pairs := ScheduleSensitivePairs(tr)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %v, want exactly one", pairs)
	}
	p := pairs[0]
	if p.First.Index != 0 || p.Second.Index != 1 {
		t.Fatalf("wrong pair: %v", p)
	}
}

func TestScheduleSensitiveSkipsSameThread(t *testing.T) {
	tr := event.NewTrace()
	tr.Append(0, 0, event.OpWrite)
	tr.Append(0, 0, event.OpWrite)
	if pairs := ScheduleSensitivePairs(tr); len(pairs) != 0 {
		t.Fatalf("same-thread pair flagged: %v", pairs)
	}
}

func TestScheduleSensitiveSkipsReadRead(t *testing.T) {
	tr := event.NewTrace()
	tr.Append(0, 0, event.OpRead)
	tr.Append(1, 0, event.OpRead)
	if pairs := ScheduleSensitivePairs(tr); len(pairs) != 0 {
		t.Fatalf("read-read pair flagged: %v", pairs)
	}
}

func TestScheduleSensitiveSkipsIndependentlyOrdered(t *testing.T) {
	// T1 writes X, then T1 writes Y; T2 reads Y then writes X. The X pair
	// (e0, e3) is ordered through Y as well (e0 → e1 → e2 → e3), so the X
	// lock is not load-bearing... but wait: e0 → e1 (thread), e1 → e2
	// (object Y), e2 → e3 (thread) — an independent path exists, so the
	// pair must NOT be flagged.
	tr := event.NewTrace()
	tr.Append(0, 0, event.OpWrite) // e0: T1 writes X
	tr.Append(0, 1, event.OpWrite) // e1: T1 writes Y
	tr.Append(1, 1, event.OpRead)  // e2: T2 reads Y
	tr.Append(1, 0, event.OpWrite) // e3: T2 writes X
	pairs := ScheduleSensitivePairs(tr)
	for _, p := range pairs {
		if p.First.Object == 0 && p.First.Index == 0 {
			t.Fatalf("independently ordered pair flagged: %v", p)
		}
	}
	// The Y pair (e1, e2) IS lock-only: flag expected.
	found := false
	for _, p := range pairs {
		if p.First.Index == 1 && p.Second.Index == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("lock-only Y pair missing from %v", pairs)
	}
}

func TestScheduleSensitiveWriteReadFlagged(t *testing.T) {
	tr := event.NewTrace()
	tr.Append(0, 0, event.OpWrite)
	tr.Append(1, 0, event.OpRead)
	if pairs := ScheduleSensitivePairs(tr); len(pairs) != 1 {
		t.Fatalf("write→read pair not flagged: %v", pairs)
	}
}

func TestPairString(t *testing.T) {
	p := Pair{
		First:  event.Event{Thread: 0, Object: 1},
		Second: event.Event{Thread: 2, Object: 1},
	}
	if got := p.String(); got != "[T1, O2] <lock-only> [T3, O2]" {
		t.Errorf("String = %q", got)
	}
}

func TestConflictMatrix(t *testing.T) {
	tr := event.NewTrace()
	tr.Append(0, 0, event.OpWrite)
	tr.Append(1, 0, event.OpWrite)
	tr.Append(0, 1, event.OpWrite)
	tr.Append(2, 1, event.OpWrite)
	m := ConflictMatrix(tr)
	if m[0][1] != 1 {
		t.Errorf("m[0][1] = %d, want 1", m[0][1])
	}
	if m[0][2] != 1 {
		t.Errorf("m[0][2] = %d, want 1", m[0][2])
	}
	if m[1][0] != 0 {
		t.Errorf("m[1][0] = %d, want 0", m[1][0])
	}
}

func TestScheduleSensitiveEmptyTrace(t *testing.T) {
	if pairs := ScheduleSensitivePairs(event.NewTrace()); pairs != nil {
		t.Fatalf("empty trace flagged %v", pairs)
	}
}
